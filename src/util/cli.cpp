#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/str.hpp"

namespace partree::util {

Cli& Cli::declare(std::string name, Spec spec) {
  const auto [it, inserted] =
      specs_.emplace(std::move(name), std::move(spec));
  // emplace on a duplicate silently kept the stale help/default before;
  // a redeclared name is always a programming error in the binary.
  PARTREE_ASSERT(inserted,
                 ("Cli name redeclared: --" + it->first).c_str());
  return *this;
}

Cli& Cli::option(std::string name, std::string help,
                 std::optional<std::string> default_value) {
  return declare(std::move(name),
                 Spec{std::move(help), std::move(default_value), false});
}

Cli& Cli::flag(std::string name, std::string help) {
  return declare(std::move(name), Spec{std::move(help), std::nullopt, true});
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (!starts_with(arg, "--")) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   std::string(arg).c_str(), usage(argv[0]).c_str());
      return false;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      inline_value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      std::fprintf(stderr, "unknown option: --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    if (it->second.is_flag) {
      if (inline_value) {
        std::fprintf(stderr, "flag --%s does not take a value\n",
                     name.c_str());
        return false;
      }
      flag_hits_.push_back(name);
      continue;
    }
    if (inline_value) {
      values_[name] = *inline_value;
    } else if (i + 1 < argc) {
      values_[name] = argv[++i];
    } else {
      std::fprintf(stderr, "option --%s requires a value\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
  }
  return true;
}

bool Cli::has(std::string_view name) const {
  if (values_.find(name) != values_.end()) return true;
  const auto it = specs_.find(name);
  return it != specs_.end() && it->second.default_value.has_value();
}

std::string Cli::get(std::string_view name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  const auto spec = specs_.find(name);
  PARTREE_ASSERT(spec != specs_.end(), "Cli::get of undeclared option");
  PARTREE_ASSERT(spec->second.default_value.has_value(),
                 "option has no value and no default");
  return *spec->second.default_value;
}

std::uint64_t Cli::get_u64(std::string_view name) const {
  const std::string raw = get(name);
  const auto parsed = parse_u64(raw);
  if (!parsed) {
    throw std::invalid_argument("option --" + std::string(name) +
                                " expects an unsigned integer, got '" + raw +
                                "'");
  }
  return *parsed;
}

double Cli::get_double(std::string_view name) const {
  const std::string raw = get(name);
  const auto parsed = parse_double(raw);
  if (!parsed) {
    throw std::invalid_argument("option --" + std::string(name) +
                                " expects a number, got '" + raw + "'");
  }
  return *parsed;
}

bool Cli::get_flag(std::string_view name) const {
  return std::find(flag_hits_.begin(), flag_hits_.end(), name) !=
         flag_hits_.end();
}

std::vector<std::uint64_t> Cli::get_u64_list(std::string_view name) const {
  std::vector<std::uint64_t> values;
  for (const auto& field : split(get(name), ',')) {
    const auto parsed = parse_u64(trim(field));
    if (!parsed) {
      throw std::invalid_argument("option --" + std::string(name) +
                                  " expects a comma-separated integer list");
    }
    values.push_back(*parsed);
  }
  return values;
}

std::string Cli::usage(std::string_view program) const {
  std::ostringstream out;
  out << "usage: " << program << " [options]\n";
  for (const auto& [name, spec] : specs_) {
    out << "  --" << name;
    if (!spec.is_flag) out << " <value>";
    out << "\n      " << spec.help;
    if (spec.default_value) out << " (default: " << *spec.default_value << ')';
    out << '\n';
  }
  return out.str();
}

}  // namespace partree::util
