#include "util/math.hpp"

#include <cmath>

namespace partree::util {

std::uint64_t ipow(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t result = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    PARTREE_DEBUG_ASSERT(base == 0 || result <= UINT64_MAX / (base ? base : 1),
                         "ipow overflow");
    result *= base;
  }
  return result;
}

std::uint64_t det_upper_factor(std::uint64_t n_pes, std::uint64_t d,
                               bool d_infinite) {
  PARTREE_ASSERT(is_pow2(n_pes), "N must be a power of two");
  const std::uint64_t log_n = exact_log2(n_pes);
  const std::uint64_t greedy = ceil_div(log_n + 1, 2);
  if (d_infinite) return greedy;
  return std::min(d + 1, greedy);
}

std::uint64_t det_lower_factor(std::uint64_t n_pes, std::uint64_t d,
                               bool d_infinite) {
  PARTREE_ASSERT(is_pow2(n_pes), "N must be a power of two");
  const std::uint64_t log_n = exact_log2(n_pes);
  const std::uint64_t p = d_infinite ? log_n : std::min(d, log_n);
  return ceil_div(p + 1, 2);
}

double rand_upper_factor(std::uint64_t n_pes) {
  PARTREE_ASSERT(n_pes >= 4, "randomized bounds need N >= 4");
  const double log_n = std::log2(static_cast<double>(n_pes));
  return 3.0 * log_n / std::log2(log_n) + 1.0;
}

double hoeffding_tail(double mu, std::uint64_t m) {
  PARTREE_ASSERT(mu >= 0.0, "hoeffding_tail: mean must be nonnegative");
  const auto md = static_cast<double>(m);
  if (md < mu + 1.0) return 1.0;
  if (mu == 0.0) return 0.0;
  return std::pow(mu * 2.718281828459045 / md, md);
}

double rand_lower_factor(std::uint64_t n_pes) {
  PARTREE_ASSERT(n_pes >= 4, "randomized bounds need N >= 4");
  const double log_n = std::log2(static_cast<double>(n_pes));
  return std::cbrt(log_n / std::log2(log_n)) / 7.0;
}

}  // namespace partree::util
