// Small string helpers shared by CSV/CLI/report code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace partree::util {

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Parses a nonnegative integer; nullopt on any malformed input.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept;

/// Parses a double; nullopt on any malformed input.
[[nodiscard]] std::optional<double> parse_double(std::string_view text) noexcept;

/// Formats a double with `digits` significant decimals, trimming zeros.
[[nodiscard]] std::string format_double(double value, int digits = 3);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

}  // namespace partree::util
