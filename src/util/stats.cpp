#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace partree::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) {
  PARTREE_ASSERT(!sorted.empty(), "quantile of empty sample");
  PARTREE_ASSERT(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;

  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  RunningStats acc;
  for (double x : sorted) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

}  // namespace partree::util
