#include "util/csv.hpp"

#include <istream>
#include <ostream>

#include "util/assert.hpp"
#include "util/str.hpp"

namespace partree::util {

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::stringify(double v) { return format_double(v, 6); }

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  for (CsvRow& row : read_csv_lines(in)) rows.push_back(std::move(row.fields));
  return rows;
}

std::vector<CsvRow> read_csv_lines(std::istream& in) {
  std::vector<CsvRow> rows;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (trim(line).empty()) continue;
    rows.push_back(CsvRow{lineno, parse_csv_line(line)});
  }
  return rows;
}

}  // namespace partree::util
