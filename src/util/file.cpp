#include "util/file.hpp"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace partree::util {

bool write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) ==
                contents.size();
  ok = std::fflush(f) == 0 && ok;
#ifndef _WIN32
  // rename() orders the directory entry, not the data blocks; without the
  // fsync a crash between rename and writeback could expose an empty file.
  ok = ::fsync(::fileno(f)) == 0 && ok;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buf.str();
}

}  // namespace partree::util
