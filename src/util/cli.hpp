// Tiny argv parser for the bench/example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` forms, with
// typed accessors and an auto-generated usage string. Unknown options are a
// hard error so typos in sweep scripts do not silently run defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace partree::util {

class Cli {
 public:
  /// Declares an option with a help string and optional default.
  /// Redeclaring a name (as option or flag) is an assertion failure.
  Cli& option(std::string name, std::string help,
              std::optional<std::string> default_value = std::nullopt);
  /// Declares a boolean flag (present => true). Same redeclaration rule.
  Cli& flag(std::string name, std::string help);

  /// Parses argv. Returns false (after printing usage) on error or --help.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name) const;
  [[nodiscard]] std::uint64_t get_u64(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_flag(std::string_view name) const;

  /// Parses a comma-separated list of u64 (e.g. "--sizes 1,2,4").
  [[nodiscard]] std::vector<std::uint64_t> get_u64_list(
      std::string_view name) const;

  [[nodiscard]] std::string usage(std::string_view program) const;

 private:
  struct Spec {
    std::string help;
    std::optional<std::string> default_value;
    bool is_flag = false;
  };

  Cli& declare(std::string name, Spec spec);

  std::map<std::string, Spec, std::less<>> specs_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> flag_hits_;
};

}  // namespace partree::util
