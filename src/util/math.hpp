// Integer and power-of-two helpers used throughout partree.
//
// Task sizes and machine sizes in the SPAA'96 model are powers of two, so
// exact integer log/ceil arithmetic appears everywhere; keeping it here (and
// tested once) avoids scattered ad-hoc bit tricks.
#pragma once

#include <bit>
#include <cstdint>

#include "util/assert.hpp"

namespace partree::util {

/// True iff `x` is a power of two (0 is not).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)); requires x > 0.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) {
  PARTREE_ASSERT(x > 0, "floor_log2(0) undefined");
  return static_cast<std::uint32_t>(63 - std::countl_zero(x));
}

/// ceil(log2(x)); requires x > 0.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) {
  PARTREE_ASSERT(x > 0, "ceil_log2(0) undefined");
  return is_pow2(x) ? floor_log2(x) : floor_log2(x) + 1;
}

/// Exact log2 of a power of two.
[[nodiscard]] constexpr std::uint32_t exact_log2(std::uint64_t x) {
  PARTREE_ASSERT(is_pow2(x), "exact_log2 requires a power of two");
  return floor_log2(x);
}

/// ceil(a / b) for nonnegative integers; requires b > 0.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) {
  PARTREE_ASSERT(b > 0, "ceil_div by zero");
  return (a + b - 1) / b;
}

/// Largest power of two that is <= x; requires x > 0.
[[nodiscard]] constexpr std::uint64_t pow2_floor(std::uint64_t x) {
  return std::uint64_t{1} << floor_log2(x);
}

/// Smallest power of two that is >= x; requires x > 0.
[[nodiscard]] constexpr std::uint64_t pow2_ceil(std::uint64_t x) {
  return std::uint64_t{1} << ceil_log2(x);
}

/// Integer power base^exp with overflow assertion (debug builds).
[[nodiscard]] std::uint64_t ipow(std::uint64_t base, std::uint32_t exp);

/// The paper's deterministic upper-bound factor for Algorithm A_M:
/// min{ d+1, ceil((log N + 1)/2) }.  `d_infinite` selects d = infinity.
[[nodiscard]] std::uint64_t det_upper_factor(std::uint64_t n_pes,
                                             std::uint64_t d,
                                             bool d_infinite = false);

/// The paper's deterministic lower-bound factor (Theorem 4.3):
/// ceil((min{d, log N} + 1)/2).
[[nodiscard]] std::uint64_t det_lower_factor(std::uint64_t n_pes,
                                             std::uint64_t d,
                                             bool d_infinite = false);

/// The paper's randomized upper-bound factor (Theorem 5.1):
/// 3 log N / log log N + 1.  Returns a double; N must be >= 4.
[[nodiscard]] double rand_upper_factor(std::uint64_t n_pes);

/// The paper's randomized lower-bound factor (Theorem 5.2):
/// (1/7) (log N / log log N)^(1/3).  N must be >= 4.
[[nodiscard]] double rand_lower_factor(std::uint64_t n_pes);

/// Hoeffding's tail bound (the paper's Lemma 4): for independent Bernoulli
/// trials with mean mu and integer m >= mu + 1, the probability of at
/// least m successes is at most (mu * e / m)^m. Returns 1.0 when the
/// precondition m >= mu + 1 fails (the bound is vacuous there).
[[nodiscard]] double hoeffding_tail(double mu, std::uint64_t m);

}  // namespace partree::util
