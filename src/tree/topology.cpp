#include "tree/topology.hpp"

namespace partree::tree {

std::vector<NodeId> Topology::nodes_of_size(std::uint64_t size) const {
  const std::uint64_t count = count_for_size(size);
  std::vector<NodeId> nodes;
  nodes.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) nodes.push_back(count + i);
  return nodes;
}

std::uint32_t Topology::hop_distance(NodeId a, NodeId b) const {
  PARTREE_ASSERT(valid(a) && valid(b), "hop_distance: invalid node");
  std::uint32_t da = depth(a);
  std::uint32_t db = depth(b);
  std::uint32_t hops = 0;
  while (da > db) {
    a = parent(a);
    --da;
    ++hops;
  }
  while (db > da) {
    b = parent(b);
    --db;
    ++hops;
  }
  while (a != b) {
    a = parent(a);
    b = parent(b);
    hops += 2;
  }
  return hops;
}

}  // namespace partree::tree
