// Fast per-level minimum-load submachine queries.
//
// The greedy algorithm A_G needs, for an arriving task of size 2^x, the
// leftmost size-2^x submachine of minimum load. LoadTree answers this
// exactly with an O(N/2^x) level scan; LevelForest trades memory for an
// O(log^2 N) update / O(log N) query alternative:
//
// For every depth D we keep a segment tree over the 2^D nodes of that
// depth, storing each node's subtree-max load. Assigning a task at node u
// (depth Du) raises every leaf under u by exactly one, hence raises the
// subtree-max of every depth-D node under u (D >= Du) by exactly one -- a
// range add on an aligned interval of each deeper level. Ancestors of u
// (D < Du) are recomputed bottom-up as max of their two children -- a point
// read + point write per level.
//
// Property tests pin every query equal to LoadTree's exact scan.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/topology.hpp"

namespace partree::tree {

/// Segment tree over a fixed-size array of loads supporting range add,
/// point set, point get, and leftmost-argmin. Internal helper of
/// LevelForest but reusable (and tested) on its own.
class MinSegTree {
 public:
  explicit MinSegTree(std::uint64_t size);

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  /// Adds `delta` to every element in [lo, hi).
  void range_add(std::uint64_t lo, std::uint64_t hi, std::int64_t delta);

  /// Overwrites element `pos` with `value`.
  void point_set(std::uint64_t pos, std::int64_t value);

  /// Reads element `pos`.
  [[nodiscard]] std::int64_t point_get(std::uint64_t pos) const;

  /// Minimum over the whole array.
  [[nodiscard]] std::int64_t min_value() const;

  /// Smallest index attaining min_value().
  [[nodiscard]] std::uint64_t argmin() const;

 private:
  void range_add_rec(std::uint64_t node, std::uint64_t node_lo,
                     std::uint64_t node_hi, std::uint64_t lo,
                     std::uint64_t hi, std::int64_t delta);
  void point_set_rec(std::uint64_t node, std::uint64_t node_lo,
                     std::uint64_t node_hi, std::uint64_t pos,
                     std::int64_t value);

  std::uint64_t size_;
  std::uint64_t base_;  // power-of-two capacity
  std::vector<std::int64_t> min_;
  std::vector<std::int64_t> lazy_;
};

/// The per-level forest; mirrors LoadTree's assign/release interface.
class LevelForest {
 public:
  explicit LevelForest(Topology topo);

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Adds one task rooted at node v. O(log^2 N).
  void assign(NodeId v);

  /// Removes one task rooted at node v. O(log^2 N).
  void release(NodeId v);

  /// Maximum PE load of the machine.
  [[nodiscard]] std::uint64_t max_load() const;

  /// Maximum PE load within submachine v. O(log N).
  [[nodiscard]] std::uint64_t subtree_max(NodeId v) const;

  /// Leftmost submachine of the given size with minimal maximum load.
  /// O(log N).
  [[nodiscard]] NodeId min_load_node(std::uint64_t size) const;

  void clear();

 private:
  void apply(NodeId v, std::int64_t delta);

  Topology topo_;
  std::vector<MinSegTree> levels_;  // levels_[D]: depth-D nodes
};

}  // namespace partree::tree
