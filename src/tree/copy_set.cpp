#include "tree/copy_set.hpp"

#include <numeric>

namespace partree::tree {

CopySet::CopySet(Topology topo, CopyFit fit) : topo_(topo), fit_(fit) {}

CopyPlacement CopySet::place(std::uint64_t size) {
  if (fit_ == CopyFit::kFirstFit) {
    for (std::uint64_t k = 0; k < copies_.size(); ++k) {
      if (copies_[k].can_fit(size)) {
        return {k, copies_[k].allocate(size)};
      }
    }
  } else {
    // Best fit: the copy whose largest vacant block is the tightest
    // sufficient one (earliest copy on ties).
    std::uint64_t best = copies_.size();
    std::uint64_t best_free = UINT64_MAX;
    for (std::uint64_t k = 0; k < copies_.size(); ++k) {
      const std::uint64_t free = copies_[k].max_free();
      if (free >= size && free < best_free) {
        best = k;
        best_free = free;
      }
    }
    if (best != copies_.size()) {
      return {best, copies_[best].allocate(size)};
    }
  }
  copies_.emplace_back(topo_);
  return {copies_.size() - 1, copies_.back().allocate(size)};
}

void CopySet::remove(const CopyPlacement& placement) {
  PARTREE_ASSERT(placement.copy < copies_.size(),
                 "remove from nonexistent copy");
  copies_[placement.copy].release(placement.node);
  while (!copies_.empty() && copies_.back().empty()) {
    copies_.pop_back();
  }
}

std::uint64_t CopySet::used() const noexcept {
  std::uint64_t total = 0;
  for (const auto& copy : copies_) total += copy.used();
  return total;
}

void CopySet::clear() { copies_.clear(); }

}  // namespace partree::tree
