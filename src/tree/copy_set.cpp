#include "tree/copy_set.hpp"

#include <bit>
#include <string>

#include "util/digest.hpp"
#include "util/math.hpp"

namespace partree::tree {

CopySet::CopySet(Topology topo, CopyFit fit)
    : topo_(topo), fit_(fit), n_levels_(topo.height() + 1) {}

std::uint32_t CopySet::rank_of(std::uint64_t max_free) {
  if (max_free == 0) return 0;
  PARTREE_DEBUG_ASSERT(util::is_pow2(max_free),
                       "copy max_free must be 0 or a power of two");
  return util::exact_log2(max_free) + 1;
}

std::uint64_t CopySet::max_free_of(std::uint64_t k) const {
  return copies_[k] ? copies_[k]->max_free() : topo_.n_leaves();
}

VacancyTree CopySet::take_vacant_tree() {
  if (!spares_.empty()) {
    VacancyTree tree = std::move(spares_.back());
    spares_.pop_back();
    return tree;
  }
  return VacancyTree(topo_);
}

void CopySet::set_rank(std::uint64_t k, std::uint32_t from, std::uint32_t to) {
  // fits_[j] holds copy k iff j < rank, so moving the rank flips exactly
  // the levels between the old and new value.
  const std::uint64_t mask = std::uint64_t{1} << (k % 64);
  std::uint64_t* stripe = fits_.data() + (k / 64) * n_levels_;
  for (std::uint32_t j = to; j < from; ++j) stripe[j] &= ~mask;
  for (std::uint32_t j = from; j < to; ++j) stripe[j] |= mask;
}

void CopySet::reindex(std::uint64_t k) {
  const std::uint32_t fresh = rank_of(max_free_of(k));
  if (fresh == copy_rank_[k]) return;
  set_rank(k, copy_rank_[k], fresh);
  copy_rank_[k] = fresh;
}

CopyPlacement CopySet::place(std::uint64_t size) {
  PARTREE_DEBUG_ASSERT(size > 0 && util::is_pow2(size),
                       "placement size must be a power of two");
  const std::uint32_t level = util::exact_log2(size);
  const std::uint64_t n_words = (copies_.size() + 63) / 64;
  std::uint64_t best = UINT64_MAX;
  if (fit_ == CopyFit::kFirstFit) {
    // First copy (creation order) whose largest vacant block fits: the
    // lowest set bit of the cumulative level-`level` bitset -- one word
    // read per 64-copy stripe.
    for (std::uint64_t w = 0; w < n_words; ++w) {
      const std::uint64_t word = fits_[w * n_levels_ + level];
      if (word != 0) {
        best = w * 64 + static_cast<std::uint64_t>(std::countr_zero(word));
        break;
      }
    }
  } else {
    // Best fit: the copy whose largest vacant block is the tightest
    // sufficient one (earliest copy on ties). Free values are exact powers
    // of two, so the tightest class at level j is "fits 2^j but not
    // 2^(j+1)"; scan classes from tightest to loosest.
    for (std::uint32_t j = level; j < n_levels_ && best == UINT64_MAX; ++j) {
      for (std::uint64_t w = 0; w < n_words; ++w) {
        std::uint64_t word = fits_[w * n_levels_ + j];
        if (j + 1 < n_levels_) word &= ~fits_[w * n_levels_ + j + 1];
        if (word != 0) {
          best = w * 64 + static_cast<std::uint64_t>(std::countr_zero(word));
          break;
        }
      }
    }
  }

  if (best == UINT64_MAX) {
    best = copies_.size();
    copies_.push_back(take_vacant_tree());
    copy_rank_.push_back(0);
    if (best % 64 == 0) {
      fits_.resize(fits_.size() + n_levels_, 0);
    }
    set_rank(best, 0, n_levels_);
    copy_rank_.back() = n_levels_;
    ++live_copies_;
  } else if (!copies_[best]) {
    // Reuse an empty slot: behaviourally identical to the all-vacant copy
    // it stands for, materialized only now that it holds a task again.
    copies_[best] = take_vacant_tree();
    ++live_copies_;
  }

  const NodeId node = copies_[best]->allocate(size);
  used_ += size;
  reindex(best);
  return {best, node};
}

void CopySet::place_run(std::uint64_t size, std::uint64_t count,
                        std::vector<CopyPlacement>& out) {
  PARTREE_DEBUG_ASSERT(size > 0 && util::is_pow2(size),
                       "placement size must be a power of two");
  if (fit_ != CopyFit::kFirstFit) {
    // Best fit has no monotone cursor (a placement can make an earlier
    // copy the new tightest fit), so the batched form is just the loop.
    for (std::uint64_t i = 0; i < count; ++i) out.push_back(place(size));
    return;
  }
  const std::uint32_t level = util::exact_log2(size);
  // Monotone first-fit cursor: nothing is removed during the run, so a
  // word whose level-`level` stripe was zero stays zero -- the scan never
  // needs to revisit words before `w`. The current word is re-read after
  // every placement because the copy just placed into may still fit.
  std::uint64_t w = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t n_words = (copies_.size() + 63) / 64;
    std::uint64_t best = UINT64_MAX;
    for (; w < n_words; ++w) {
      const std::uint64_t word = fits_[w * n_levels_ + level];
      if (word != 0) {
        best = w * 64 + static_cast<std::uint64_t>(std::countr_zero(word));
        break;
      }
    }
    if (best == UINT64_MAX) {
      best = copies_.size();
      copies_.push_back(take_vacant_tree());
      copy_rank_.push_back(0);
      if (best % 64 == 0) {
        fits_.resize(fits_.size() + n_levels_, 0);
      }
      set_rank(best, 0, n_levels_);
      copy_rank_.back() = n_levels_;
      ++live_copies_;
      w = best / 64;  // every earlier word stayed zero at this level
    } else if (!copies_[best]) {
      copies_[best] = take_vacant_tree();
      ++live_copies_;
    }
    const NodeId node = copies_[best]->allocate(size);
    used_ += size;
    reindex(best);
    out.push_back({best, node});
  }
}

bool CopySet::occupied(const CopyPlacement& placement) const {
  return placement.copy < copies_.size() &&
         copies_[placement.copy].has_value() &&
         copies_[placement.copy]->occupied(placement.node);
}

void CopySet::remove(const CopyPlacement& placement) {
  PARTREE_ASSERT(placement.copy < copies_.size(),
                 "remove from nonexistent copy");
  PARTREE_ASSERT(copies_[placement.copy].has_value(),
                 "remove from empty copy");
  std::optional<VacancyTree>& copy = copies_[placement.copy];
  copy->release(placement.node);
  used_ -= topo_.subtree_size(placement.node);
  if (copy->empty()) {
    // Reclaim the drained copy's storage in place; the slot keeps its
    // index (outstanding CopyPlacements stay valid) and keeps acting as a
    // fully vacant copy in the placement search. The drained tree itself
    // joins the spare pool for the next materialization.
    spares_.push_back(std::move(*copy));
    copy.reset();
    --live_copies_;
  }
  reindex(placement.copy);
  while (!copies_.empty() && !copies_.back().has_value()) {
    const std::uint64_t k = copies_.size() - 1;
    set_rank(k, copy_rank_[k], 0);
    if (k % 64 == 0) {
      fits_.resize(fits_.size() - n_levels_);
    }
    copies_.pop_back();
    copy_rank_.pop_back();
  }
}

std::uint64_t CopySet::digest() const {
  util::Fnv fnv;
  fnv.mix(topo_.n_leaves());
  fnv.mix(copies_.size());
  for (std::uint64_t k = 0; k < copies_.size(); ++k) {
    fnv.mix(k);
    if (!copies_[k]) {
      fnv.mix(0);  // empty slot == fully vacant copy, storage or not
      continue;
    }
    // Occupied subtree roots form a set; fold commutatively so the digest
    // does not depend on enumeration order.
    std::uint64_t occupancy = 0;
    for (NodeId v = 1; v <= topo_.n_nodes(); ++v) {
      if (copies_[k]->occupied(v)) {
        occupancy = util::commutative_add(occupancy, util::element_digest(v));
      }
    }
    fnv.mix(occupancy);
    fnv.mix(copies_[k]->used());
  }
  fnv.mix(used_);
  return fnv.value();
}

std::string CopySet::check() const {
  std::uint64_t used = 0;
  std::uint64_t live = 0;
  const std::uint64_t n_words = (copies_.size() + 63) / 64;
  for (std::uint64_t k = 0; k < copies_.size(); ++k) {
    if (copies_[k]) {
      used += copies_[k]->used();
      ++live;
    }
    const std::uint32_t want_rank = rank_of(max_free_of(k));
    if (copy_rank_[k] != want_rank) {
      return "copy " + std::to_string(k) + " rank " +
             std::to_string(copy_rank_[k]) + " != recomputed " +
             std::to_string(want_rank);
    }
    for (std::uint32_t j = 0; j < n_levels_; ++j) {
      const bool bit =
          (fits_[(k / 64) * n_levels_ + j] >> (k % 64)) & 1ULL;
      if (bit != (j < want_rank)) {
        return "copy " + std::to_string(k) + " fits_ bit at level " +
               std::to_string(j) + " disagrees with rank";
      }
    }
  }
  if (fits_.size() != n_words * n_levels_) {
    return "fits_ word count does not match copy count";
  }
  if (used != used_) {
    return "used " + std::to_string(used_) + " != sum over copies " +
           std::to_string(used);
  }
  if (live != live_copies_) {
    return "live copy count " + std::to_string(live_copies_) +
           " != recomputed " + std::to_string(live);
  }
  return "";
}

void CopySet::debug_corrupt_used(std::uint64_t used) {
  used_ = used;  // per-copy occupancy deliberately left untouched
}

void CopySet::clear() {
  // Drain live trees into the spare pool instead of freeing them: the
  // next repack re-creates roughly the same number of copies, and a
  // drained tree is behaviourally identical to a freshly built one, so
  // the O(N)-per-copy allocate + zero cost of a round disappears after
  // the first one.
  for (std::optional<VacancyTree>& copy : copies_) {
    if (!copy) continue;
    copy->clear();
    spares_.push_back(std::move(*copy));
  }
  copies_.clear();
  copy_rank_.clear();
  fits_.clear();
  used_ = 0;
  live_copies_ = 0;
}

}  // namespace partree::tree
