// Buddy-style occupancy tracking for one "copy" of the machine.
//
// The paper's reallocation procedure A_R and basic algorithm A_B view the
// machine as a stack of identical copies of T in which every PE belongs to
// at most one task. A VacancyTree is one such copy: tasks occupy disjoint
// whole subtrees, and the structure answers "leftmost vacant size-2^x
// submachine" in O(log N) via a largest-vacant-block aggregate.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/topology.hpp"

namespace partree::tree {

class VacancyTree {
 public:
  explicit VacancyTree(Topology topo);

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Size of the largest fully-vacant aligned submachine. O(1).
  [[nodiscard]] std::uint64_t max_free() const noexcept { return free_[1]; }

  /// True iff the whole copy is vacant.
  [[nodiscard]] bool empty() const noexcept {
    return free_[1] == topo_.n_leaves();
  }

  /// Cumulative size of occupied PEs in this copy.
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }

  /// Whether a vacant submachine of the given size exists.
  [[nodiscard]] bool can_fit(std::uint64_t size) const {
    PARTREE_DEBUG_ASSERT(util::is_pow2(size), "size must be a power of two");
    return free_[1] >= size;
  }

  /// Occupies the leftmost vacant submachine of the given size and returns
  /// its node; requires can_fit(size). O(log N).
  NodeId allocate(std::uint64_t size);

  /// Vacates the submachine rooted at v (must be occupied by allocate).
  void release(NodeId v);

  /// True iff a task is rooted exactly at v.
  [[nodiscard]] bool occupied(NodeId v) const {
    PARTREE_DEBUG_ASSERT(topo_.valid(v), "invalid node");
    return occupied_[v];
  }

  void clear();

 private:
  void update_path(NodeId v);
  [[nodiscard]] std::uint64_t recompute(NodeId v) const;

  Topology topo_;
  std::vector<std::uint8_t> occupied_;   // task rooted exactly here
  std::vector<std::uint64_t> free_;      // largest vacant aligned block below
  std::uint64_t used_ = 0;
};

}  // namespace partree::tree
