#include "tree/level_forest.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace partree::tree {

MinSegTree::MinSegTree(std::uint64_t size)
    : size_(size),
      base_(size <= 1 ? 1 : util::pow2_ceil(size)),
      min_(2 * base_, 0),
      lazy_(2 * base_, 0) {
  PARTREE_ASSERT(size >= 1, "MinSegTree needs at least one element");
}

void MinSegTree::range_add_rec(std::uint64_t node, std::uint64_t node_lo,
                               std::uint64_t node_hi, std::uint64_t lo,
                               std::uint64_t hi, std::int64_t delta) {
  if (hi <= node_lo || node_hi <= lo) return;
  if (lo <= node_lo && node_hi <= hi) {
    min_[node] += delta;
    lazy_[node] += delta;
    return;
  }
  const std::uint64_t mid = (node_lo + node_hi) / 2;
  range_add_rec(2 * node, node_lo, mid, lo, hi, delta);
  range_add_rec(2 * node + 1, mid, node_hi, lo, hi, delta);
  min_[node] = std::min(min_[2 * node], min_[2 * node + 1]) + lazy_[node];
}

void MinSegTree::range_add(std::uint64_t lo, std::uint64_t hi,
                           std::int64_t delta) {
  PARTREE_ASSERT(lo <= hi && hi <= size_, "range_add out of bounds");
  if (lo == hi) return;
  range_add_rec(1, 0, base_, lo, hi, delta);
}

void MinSegTree::point_set_rec(std::uint64_t node, std::uint64_t node_lo,
                               std::uint64_t node_hi, std::uint64_t pos,
                               std::int64_t value) {
  if (node_hi - node_lo == 1) {
    min_[node] = value;
    lazy_[node] = 0;
    return;
  }
  const std::uint64_t mid = (node_lo + node_hi) / 2;
  // `value` is an absolute element value; children store values relative to
  // the pending adds of their ancestors, so subtract this node's lazy on
  // the way down instead of pushing lazies (keeps const point_get simple).
  if (pos < mid) {
    point_set_rec(2 * node, node_lo, mid, pos, value - lazy_[node]);
  } else {
    point_set_rec(2 * node + 1, mid, node_hi, pos, value - lazy_[node]);
  }
  min_[node] = std::min(min_[2 * node], min_[2 * node + 1]) + lazy_[node];
}

void MinSegTree::point_set(std::uint64_t pos, std::int64_t value) {
  PARTREE_ASSERT(pos < size_, "point_set out of bounds");
  point_set_rec(1, 0, base_, pos, value);
}

std::int64_t MinSegTree::point_get(std::uint64_t pos) const {
  PARTREE_ASSERT(pos < size_, "point_get out of bounds");
  std::uint64_t node = 1;
  std::uint64_t node_lo = 0;
  std::uint64_t node_hi = base_;
  std::int64_t offset = 0;
  while (node_hi - node_lo > 1) {
    offset += lazy_[node];
    const std::uint64_t mid = (node_lo + node_hi) / 2;
    if (pos < mid) {
      node = 2 * node;
      node_hi = mid;
    } else {
      node = 2 * node + 1;
      node_lo = mid;
    }
  }
  return min_[node] + offset;
}

std::int64_t MinSegTree::min_value() const {
  // Padding elements (indices >= size_) only exist when size_ is not a
  // power of two; LevelForest always uses power-of-two sizes, and padding
  // stays at the minimum of real elements' updates only if untouched.
  // Guard anyway by scanning the top when padding exists.
  if (base_ == size_) return min_[1];
  std::int64_t best = point_get(0);
  for (std::uint64_t i = 1; i < size_; ++i) {
    best = std::min(best, point_get(i));
  }
  return best;
}

std::uint64_t MinSegTree::argmin() const {
  if (base_ != size_) {
    // Fallback linear scan for non-power-of-two sizes (not used on the
    // hot path).
    std::int64_t best = point_get(0);
    std::uint64_t best_pos = 0;
    for (std::uint64_t i = 1; i < size_; ++i) {
      const std::int64_t v = point_get(i);
      if (v < best) {
        best = v;
        best_pos = i;
      }
    }
    return best_pos;
  }
  std::uint64_t node = 1;
  std::uint64_t node_lo = 0;
  std::uint64_t node_hi = base_;
  while (node_hi - node_lo > 1) {
    const std::uint64_t mid = (node_lo + node_hi) / 2;
    // Prefer the left child on ties for the leftmost argmin.
    if (min_[2 * node] <= min_[2 * node + 1]) {
      node = 2 * node;
      node_hi = mid;
    } else {
      node = 2 * node + 1;
      node_lo = mid;
    }
  }
  return node_lo;
}

LevelForest::LevelForest(Topology topo) : topo_(topo) {
  levels_.reserve(topo_.height() + 1);
  for (std::uint32_t d = 0; d <= topo_.height(); ++d) {
    levels_.emplace_back(std::uint64_t{1} << d);
  }
}

void LevelForest::apply(NodeId v, std::int64_t delta) {
  PARTREE_ASSERT(topo_.valid(v), "LevelForest: invalid node");
  const std::uint32_t dv = topo_.depth(v);
  const std::uint64_t idx = topo_.index_of(v);

  // Deeper levels (including v's own): aligned range add.
  for (std::uint32_t d = dv; d <= topo_.height(); ++d) {
    const std::uint32_t shift = d - dv;
    levels_[d].range_add(idx << shift, (idx + 1) << shift, delta);
  }
  // Ancestors: recompute as max of children.
  NodeId u = v;
  for (std::uint32_t d = dv; d-- > 0;) {
    u = Topology::parent(u);
    const std::uint64_t ui = topo_.index_of(u);
    const std::int64_t lhs = levels_[d + 1].point_get(2 * ui);
    const std::int64_t rhs = levels_[d + 1].point_get(2 * ui + 1);
    levels_[d].point_set(ui, std::max(lhs, rhs));
  }
}

void LevelForest::assign(NodeId v) { apply(v, +1); }

void LevelForest::release(NodeId v) { apply(v, -1); }

std::uint64_t LevelForest::max_load() const {
  return static_cast<std::uint64_t>(levels_[0].point_get(0));
}

std::uint64_t LevelForest::subtree_max(NodeId v) const {
  PARTREE_ASSERT(topo_.valid(v), "subtree_max of invalid node");
  const std::uint32_t dv = topo_.depth(v);
  return static_cast<std::uint64_t>(levels_[dv].point_get(topo_.index_of(v)));
}

NodeId LevelForest::min_load_node(std::uint64_t size) const {
  const std::uint32_t d = topo_.depth_for_size(size);
  const std::uint64_t idx = levels_[d].argmin();
  return (NodeId{1} << d) + idx;
}

void LevelForest::clear() {
  for (std::uint32_t d = 0; d <= topo_.height(); ++d) {
    levels_[d] = MinSegTree(std::uint64_t{1} << d);
  }
}

}  // namespace partree::tree
