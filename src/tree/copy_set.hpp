// An ordered stack of machine copies: the substrate of A_R and A_B.
//
// Copies are ordered by creation time; a placement request scans copies in
// order and takes the leftmost vacant block in the first copy that fits
// (creating a fresh copy when none fits). Physically, a task placed in copy
// k at node v occupies subtree v of the real machine; copies are pure
// bookkeeping that cap the machine's maximum load by the copy count.
//
// Placement is indexed, not scanned: a copy's largest vacant aligned block
// is always 0 or a power of two, so the set keeps cumulative per-level
// bitsets fits_[j] = "copies whose largest vacant block is >= 2^j". A
// first-fit query for a (power-of-two) size 2^j is then one word read per
// 64 copies -- O(ceil(C/64)) instead of O(C) pointer chases over C live
// copies -- and an update moves a copy across |delta level| words with no
// allocation. Copies that drain to empty release their O(N) occupancy
// storage (slot indices stay stable, so issued CopyPlacements remain
// valid); an empty slot behaves exactly like a fully-vacant copy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tree/vacancy_tree.hpp"

namespace partree::tree {

/// Location of a task inside a CopySet.
struct CopyPlacement {
  std::uint64_t copy = 0;       ///< copy index at placement time
  NodeId node = kInvalidNode;   ///< subtree root within the machine

  friend bool operator==(const CopyPlacement&, const CopyPlacement&) = default;
};

/// Copy-selection policy. The paper's A_B/A_R use first-fit, and Lemma
/// 2's proof depends on it (its Claim 1 fails under best-fit); the
/// best-fit variant exists for the ab4 ablation.
enum class CopyFit : std::uint8_t {
  kFirstFit,  ///< first copy (creation order) that can hold the block
  kBestFit,   ///< copy with the smallest sufficient vacant block
};

class CopySet {
 public:
  explicit CopySet(Topology topo, CopyFit fit = CopyFit::kFirstFit);

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Number of copies currently in existence (>= 1 after first placement).
  [[nodiscard]] std::uint64_t copy_count() const noexcept {
    return copies_.size();
  }

  /// Number of copies currently holding at least one task. Empty copies
  /// (interior slots whose tasks all departed) keep their index but hold
  /// no occupancy storage, so this is what tracks live usage under churn.
  [[nodiscard]] std::uint64_t live_copy_count() const noexcept {
    return live_copies_;
  }

  /// First-fit placement: first copy with a vacant block of `size`,
  /// leftmost block within it. Creates a new copy when none fits.
  [[nodiscard]] CopyPlacement place(std::uint64_t size);

  /// Places `count` tasks of one (power-of-two) size, appending the
  /// placements to `out` in placement order. Byte-identical results to
  /// `count` repeated place(size) calls; under first-fit the search
  /// cursor is carried across the run -- placements only shrink vacancy,
  /// so the first fitting copy never moves backward -- which amortises
  /// the per-level fits_ word scan over the whole size class instead of
  /// restarting it at copy 0 for every task.
  void place_run(std::uint64_t size, std::uint64_t count,
                 std::vector<CopyPlacement>& out);

  /// True iff `placement` names a live copy with a task rooted exactly at
  /// its node -- i.e. a placement this set handed out and still holds.
  /// Used by allocator debug checks to audit external placement maps.
  [[nodiscard]] bool occupied(const CopyPlacement& placement) const;

  /// Releases a previous placement. A copy that drains to empty releases
  /// its occupancy storage in place (its index remains valid and it keeps
  /// behaving like a fully-vacant copy); trailing empty copies are
  /// discarded entirely (search order over the remaining copies is
  /// unchanged, so behaviour is identical to keeping them).
  void remove(const CopyPlacement& placement);

  /// Total occupied PE count across copies. O(1).
  [[nodiscard]] std::uint64_t used() const noexcept { return used_; }

  void clear();

  /// Canonical 64-bit state digest. Copies are an ordered stack, so copy
  /// indices are mixed in order; WITHIN a copy the occupied subtree roots
  /// form a set and fold commutatively. An empty interior slot digests
  /// identically whether its storage is reclaimed or never existed, and
  /// trailing-empty discard is deterministic, so behaviourally equal sets
  /// digest equal. O(copies * N).
  [[nodiscard]] std::uint64_t digest() const;

  /// Recomputes every maintained aggregate (used_, live_copies_, per-copy
  /// ranks, fits_ bitset membership) from the ground-truth occupancy and
  /// compares. Returns "" when consistent, else a description of the first
  /// inconsistency. The engine's debug_checks net calls this through
  /// Allocator::debug_check_state for CopySet-backed allocators.
  [[nodiscard]] std::string check() const;

  /// TEST-ONLY fault injection: overwrites the cumulative used-PE count
  /// without touching any copy, leaving the set internally inconsistent on
  /// purpose so check() and the crash-dump path can be exercised. Never
  /// call outside tests/fault injection.
  void debug_corrupt_used(std::uint64_t used);

 private:
  /// Rank of a max_free value: 0 for a full copy, exact_log2 + 1 for the
  /// power-of-two free sizes. A copy belongs to fits_[j] iff j < rank.
  [[nodiscard]] static std::uint32_t rank_of(std::uint64_t max_free);
  /// Moves copy k's fits_ membership from its recorded rank to the one
  /// matching its current max_free (flips |delta| words).
  void reindex(std::uint64_t k);
  [[nodiscard]] std::uint64_t max_free_of(std::uint64_t k) const;
  void set_rank(std::uint64_t k, std::uint32_t from, std::uint32_t to);
  /// A pooled drained tree if one is cached, else a freshly built one.
  [[nodiscard]] VacancyTree take_vacant_tree();

  Topology topo_;
  CopyFit fit_;
  /// nullopt = empty copy with reclaimed storage (equivalent to a fully
  /// vacant VacancyTree); materialized lazily on next placement into it.
  std::vector<std::optional<VacancyTree>> copies_;
  /// Drained trees kept for the next materialization: a drained
  /// VacancyTree is identical to a freshly built one, so reusing one
  /// turns the drain/refill oscillation under churn -- and clear() plus
  /// rebuild during a repack round -- into moves instead of O(N)
  /// free + allocate pairs. Retained storage is bounded by the largest
  /// simultaneous copy count the set has ever held.
  std::vector<VacancyTree> spares_;
  std::vector<std::uint32_t> copy_rank_;  // current fits_ rank per copy
  /// Cumulative per-level bitsets over copy ids, stored word-major in one
  /// flat array: word w of level j lives at fits_[w * n_levels_ + j], and
  /// bit k%64 of word k/64 is set iff copy k's largest vacant block is
  /// >= 2^j. Word-major keeps one 64-copy stripe contiguous, and the flat
  /// layout makes the whole index a single allocation (repacks build and
  /// discard a CopySet per call, so construction cost is on the hot path).
  std::vector<std::uint64_t> fits_;
  std::uint32_t n_levels_;                // height+1 (levels 0..height)
  std::uint64_t used_ = 0;
  std::uint64_t live_copies_ = 0;
};

}  // namespace partree::tree
