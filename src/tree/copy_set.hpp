// An ordered stack of machine copies: the substrate of A_R and A_B.
//
// Copies are ordered by creation time; a placement request scans copies in
// order and takes the leftmost vacant block in the first copy that fits
// (creating a fresh copy when none fits). Physically, a task placed in copy
// k at node v occupies subtree v of the real machine; copies are pure
// bookkeeping that cap the machine's maximum load by the copy count.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/vacancy_tree.hpp"

namespace partree::tree {

/// Location of a task inside a CopySet.
struct CopyPlacement {
  std::uint64_t copy = 0;       ///< copy index at placement time
  NodeId node = kInvalidNode;   ///< subtree root within the machine

  friend bool operator==(const CopyPlacement&, const CopyPlacement&) = default;
};

/// Copy-selection policy. The paper's A_B/A_R use first-fit, and Lemma
/// 2's proof depends on it (its Claim 1 fails under best-fit); the
/// best-fit variant exists for the ab4 ablation.
enum class CopyFit : std::uint8_t {
  kFirstFit,  ///< first copy (creation order) that can hold the block
  kBestFit,   ///< copy with the smallest sufficient vacant block
};

class CopySet {
 public:
  explicit CopySet(Topology topo, CopyFit fit = CopyFit::kFirstFit);

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Number of copies currently in existence (>= 1 after first placement).
  [[nodiscard]] std::uint64_t copy_count() const noexcept {
    return copies_.size();
  }

  /// First-fit placement: first copy with a vacant block of `size`,
  /// leftmost block within it. Creates a new copy when none fits.
  [[nodiscard]] CopyPlacement place(std::uint64_t size);

  /// Releases a previous placement. Trailing empty copies are discarded
  /// (search order over the remaining copies is unchanged, so behaviour is
  /// identical to keeping them).
  void remove(const CopyPlacement& placement);

  /// Total occupied PE count across copies.
  [[nodiscard]] std::uint64_t used() const noexcept;

  void clear();

 private:
  Topology topo_;
  CopyFit fit_;
  std::vector<VacancyTree> copies_;
};

}  // namespace partree::tree
