// The N-leaf complete-binary-tree machine of the SPAA'96 model.
//
// PEs sit at the leaves; internal nodes are switches. A size-2^x submachine
// is exactly the subtree of one node, so submachines are identified by node
// ids in the classic heap layout: root = 1, children of v are 2v and 2v+1,
// leaves occupy [N, 2N). This file is pure index arithmetic; load and
// occupancy state live in LoadTree / VacancyTree.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/math.hpp"

namespace partree::tree {

/// Heap index of a tree node (1-based; 0 is an invalid sentinel).
using NodeId = std::uint64_t;

/// 0-based index of a processing element (a leaf).
using PeId = std::uint64_t;

inline constexpr NodeId kInvalidNode = 0;

/// Index geometry of an N-leaf complete binary tree (N a power of two).
/// Cheap value type: stores only N and log2(N).
class Topology {
 public:
  /// Constructs an N-leaf machine; N must be a power of two (>= 1).
  explicit Topology(std::uint64_t n_leaves)
      : n_leaves_(n_leaves), height_(util::exact_log2(n_leaves)) {
    PARTREE_ASSERT(n_leaves >= 1, "machine needs at least one PE");
  }

  [[nodiscard]] std::uint64_t n_leaves() const noexcept { return n_leaves_; }
  /// log2(N): depth of the leaves; the root has depth 0.
  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }
  /// Total node count, 2N - 1.
  [[nodiscard]] std::uint64_t n_nodes() const noexcept {
    return 2 * n_leaves_ - 1;
  }

  [[nodiscard]] static constexpr NodeId root() noexcept { return 1; }
  [[nodiscard]] static constexpr NodeId parent(NodeId v) noexcept {
    return v >> 1;
  }
  [[nodiscard]] static constexpr NodeId left(NodeId v) noexcept {
    return v << 1;
  }
  [[nodiscard]] static constexpr NodeId right(NodeId v) noexcept {
    return (v << 1) | 1;
  }

  [[nodiscard]] bool valid(NodeId v) const noexcept {
    return v >= 1 && v < 2 * n_leaves_;
  }
  [[nodiscard]] bool is_leaf(NodeId v) const noexcept {
    return v >= n_leaves_;
  }

  /// Depth of node v (root = 0, leaves = height()).
  [[nodiscard]] std::uint32_t depth(NodeId v) const {
    PARTREE_DEBUG_ASSERT(valid(v), "depth of invalid node");
    return util::floor_log2(v);
  }

  /// Number of leaves in the subtree of v (the submachine size).
  [[nodiscard]] std::uint64_t subtree_size(NodeId v) const {
    return n_leaves_ >> depth(v);
  }

  /// First PE (leaf index) covered by the subtree of v.
  [[nodiscard]] PeId first_pe(NodeId v) const {
    const std::uint32_t shift = height_ - depth(v);
    return (v << shift) - n_leaves_;
  }

  /// One past the last PE covered by the subtree of v.
  [[nodiscard]] PeId end_pe(NodeId v) const {
    return first_pe(v) + subtree_size(v);
  }

  /// The leaf node holding PE `pe`.
  [[nodiscard]] NodeId leaf_node(PeId pe) const {
    PARTREE_DEBUG_ASSERT(pe < n_leaves_, "PE index out of range");
    return n_leaves_ + pe;
  }

  /// True iff `anc` is an ancestor of (or equal to) `v`.
  [[nodiscard]] bool contains(NodeId anc, NodeId v) const {
    PARTREE_DEBUG_ASSERT(valid(anc) && valid(v), "contains: invalid node");
    const std::uint32_t da = depth(anc);
    const std::uint32_t dv = depth(v);
    return dv >= da && (v >> (dv - da)) == anc;
  }

  /// Depth at which submachines of the given size live; size must be a
  /// power of two and <= N.
  [[nodiscard]] std::uint32_t depth_for_size(std::uint64_t size) const {
    PARTREE_ASSERT(util::is_pow2(size) && size <= n_leaves_,
                   "submachine size must be a power of two <= N");
    return height_ - util::exact_log2(size);
  }

  /// Number of distinct submachines of the given size: N / size.
  [[nodiscard]] std::uint64_t count_for_size(std::uint64_t size) const {
    return n_leaves_ / size;
  }

  /// The i-th (left-to-right) submachine of the given size.
  [[nodiscard]] NodeId node_for(std::uint64_t size, std::uint64_t index) const {
    PARTREE_ASSERT(index < count_for_size(size),
                   "submachine index out of range");
    return count_for_size(size) + index;
  }

  /// Left-to-right rank of node v among nodes of its size.
  [[nodiscard]] std::uint64_t index_of(NodeId v) const {
    return v - (NodeId{1} << depth(v));
  }

  /// All node ids of the given submachine size, left to right.
  [[nodiscard]] std::vector<NodeId> nodes_of_size(std::uint64_t size) const;

  /// Hop distance between two nodes in the tree (edges on the unique path).
  [[nodiscard]] std::uint32_t hop_distance(NodeId a, NodeId b) const;

  friend bool operator==(const Topology&, const Topology&) = default;

 private:
  std::uint64_t n_leaves_;
  std::uint32_t height_;
};

}  // namespace partree::tree
