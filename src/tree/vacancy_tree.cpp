#include "tree/vacancy_tree.hpp"

#include <algorithm>

namespace partree::tree {

VacancyTree::VacancyTree(Topology topo)
    : topo_(topo),
      occupied_(topo.n_nodes() + 1, 0),
      free_(topo.n_nodes() + 1, 0) {
  // Initially every node's subtree is fully vacant.
  for (NodeId v = 1; v <= topo_.n_nodes(); ++v) {
    free_[v] = topo_.subtree_size(v);
  }
}

std::uint64_t VacancyTree::recompute(NodeId v) const {
  if (occupied_[v]) return 0;
  if (topo_.is_leaf(v)) return 1;
  const std::uint64_t lhs = free_[Topology::left(v)];
  const std::uint64_t rhs = free_[Topology::right(v)];
  const std::uint64_t size = topo_.subtree_size(v);
  // A fully vacant subtree coalesces into one block of the full size.
  if (lhs + rhs == size) return size;
  return std::max(lhs, rhs);
}

void VacancyTree::update_path(NodeId v) {
  // Stop as soon as a node's aggregate is unchanged: an ancestor only sees
  // this child through free_[v], so nothing above can change either.
  while (true) {
    const std::uint64_t fresh = recompute(v);
    if (fresh == free_[v]) return;
    free_[v] = fresh;
    if (v == 1) return;
    v = Topology::parent(v);
  }
}

NodeId VacancyTree::allocate(std::uint64_t size) {
  PARTREE_ASSERT(util::is_pow2(size) && size <= topo_.n_leaves(),
                 "allocation size must be a power of two <= N");
  PARTREE_ASSERT(can_fit(size), "no vacant submachine of requested size");
  NodeId v = Topology::root();
  while (topo_.subtree_size(v) > size) {
    // Leftmost-fit: descend left whenever the left subtree can hold it.
    const NodeId l = Topology::left(v);
    v = free_[l] >= size ? l : Topology::right(v);
    PARTREE_DEBUG_ASSERT(free_[v] >= size, "free aggregate inconsistent");
  }
  PARTREE_ASSERT(free_[v] == size, "target block not fully vacant");
  occupied_[v] = 1;
  used_ += size;
  update_path(v);
  return v;
}

void VacancyTree::release(NodeId v) {
  PARTREE_ASSERT(topo_.valid(v), "release of invalid node");
  PARTREE_ASSERT(occupied_[v], "release of unoccupied node");
  occupied_[v] = 0;
  used_ -= topo_.subtree_size(v);
  update_path(v);
}

void VacancyTree::clear() {
  std::fill(occupied_.begin(), occupied_.end(), 0);
  for (NodeId v = 1; v <= topo_.n_nodes(); ++v) {
    free_[v] = topo_.subtree_size(v);
  }
  used_ = 0;
}

}  // namespace partree::tree
