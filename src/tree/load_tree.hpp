// Load accounting over the tree machine.
//
// Each active task occupies one whole subtree; the load of a PE is the
// number of active tasks whose subtree contains it. We therefore store, per
// node, the number of tasks rooted exactly there (`add`) plus the classic
// "max of root-to-leaf add-sums below v" aggregate (`down`):
//
//   down[v] = add[v] + max(down[left(v)], down[right(v)])      (internal)
//   down[leaf] = add[leaf]
//
// which makes assign/release an O(log N) leaf-to-root path update, gives the
// machine-wide maximum load as down[root], and the maximum load inside
// submachine v as prefix(v) + down[v] where prefix sums `add` over strict
// ancestors. The leftmost minimum-load submachine query (greedy A_G) is an
// exact DFS over the target level.
#pragma once

#include <cstdint>
#include <vector>

#include "tree/topology.hpp"

namespace partree::tree {

class LoadTree {
 public:
  explicit LoadTree(Topology topo);

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

  /// Adds one task rooted at node v. O(log N).
  void assign(NodeId v);

  /// Removes one task rooted at node v (one must be present). O(log N).
  void release(NodeId v);

  /// Number of tasks rooted exactly at v.
  [[nodiscard]] std::uint64_t tasks_rooted_at(NodeId v) const {
    PARTREE_DEBUG_ASSERT(topo_.valid(v), "invalid node");
    return add_[v];
  }

  /// Maximum PE load over the whole machine. O(1).
  [[nodiscard]] std::uint64_t max_load() const noexcept { return down_[1]; }

  /// Maximum PE load within the submachine of v. O(log N).
  [[nodiscard]] std::uint64_t subtree_max(NodeId v) const;

  /// Load of a single PE. O(log N).
  [[nodiscard]] std::uint64_t pe_load(PeId pe) const;

  /// Loads of every PE, left to right. O(N).
  [[nodiscard]] std::vector<std::uint64_t> pe_loads() const;

  /// Leftmost submachine of the given size whose maximum PE load is
  /// minimal (the greedy A_G target). Exact; O(N/size) node visits with
  /// branch-and-bound pruning; allocation-free (recursive DFS, depth at
  /// most log N).
  [[nodiscard]] NodeId min_load_node(std::uint64_t size) const;

  /// Sum over PEs of their load == total size of active tasks. O(1).
  [[nodiscard]] std::uint64_t total_active_size() const noexcept {
    return active_size_;
  }

  /// Number of active (assigned, unreleased) tasks. O(1).
  [[nodiscard]] std::uint64_t active_tasks() const noexcept {
    return active_tasks_;
  }

  void clear();

  /// Canonical 64-bit state digest: FNV-1a over the per-node task counts
  /// (positional, index order -- the tree is a positional structure) plus
  /// the maintained aggregates, so a digest mismatch flags either a
  /// different occupancy or drifted incremental aggregates. O(N).
  [[nodiscard]] std::uint64_t digest() const;

  /// TEST-ONLY fault injection: overwrites the task count rooted at v
  /// without touching any aggregate, leaving the tree internally
  /// inconsistent on purpose so the invariant nets (EngineOptions::
  /// debug_checks, the flight-recorder crash dump) can be exercised
  /// against a genuinely corrupted tree. Never call outside tests.
  void debug_corrupt_add(NodeId v, std::uint64_t count);

 private:
  void update_path(NodeId v);
  void min_load_dfs(NodeId v, std::uint32_t levels_left, std::uint64_t prefix,
                    NodeId& best, std::uint64_t& best_load,
                    std::uint64_t& visits) const;

  struct Frame {
    NodeId node;
    std::uint64_t prefix;
  };

  Topology topo_;
  std::vector<std::uint64_t> add_;
  std::vector<std::uint64_t> down_;
  std::uint64_t active_size_ = 0;
  std::uint64_t active_tasks_ = 0;
  // Reused DFS stack for the const query paths (pe_loads, min_load_node);
  // cleared, never shrunk, so steady-state queries allocate nothing.
  mutable std::vector<Frame> scratch_;
};

}  // namespace partree::tree
