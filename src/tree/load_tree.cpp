#include "tree/load_tree.hpp"

#include <algorithm>

#include "obs/counters.hpp"
#include "util/digest.hpp"

namespace partree::tree {

LoadTree::LoadTree(Topology topo)
    : topo_(topo),
      add_(topo.n_nodes() + 1, 0),
      down_(topo.n_nodes() + 1, 0) {
  scratch_.reserve(topo_.height() + 2);
}

void LoadTree::update_path(NodeId v) {
  // Recompute `down` from v up to the root; stop as soon as a node's
  // aggregate is unchanged (its ancestors only see `down` of this child,
  // so nothing above can change either).
  while (true) {
    const std::uint64_t below =
        topo_.is_leaf(v) ? 0 : std::max(down_[Topology::left(v)],
                                        down_[Topology::right(v)]);
    const std::uint64_t fresh = add_[v] + below;
    if (fresh == down_[v]) return;
    down_[v] = fresh;
    if (v == 1) return;
    v = Topology::parent(v);
  }
}

void LoadTree::assign(NodeId v) {
  PARTREE_ASSERT(topo_.valid(v), "assign to invalid node");
  ++add_[v];
  active_size_ += topo_.subtree_size(v);
  ++active_tasks_;
  update_path(v);
}

void LoadTree::release(NodeId v) {
  PARTREE_ASSERT(topo_.valid(v), "release of invalid node");
  PARTREE_ASSERT(add_[v] > 0, "release with no task rooted at node");
  --add_[v];
  active_size_ -= topo_.subtree_size(v);
  --active_tasks_;
  update_path(v);
}

std::uint64_t LoadTree::subtree_max(NodeId v) const {
  PARTREE_ASSERT(topo_.valid(v), "subtree_max of invalid node");
  std::uint64_t prefix = 0;
  for (NodeId u = Topology::parent(v); u >= 1; u = Topology::parent(u)) {
    prefix += add_[u];
    if (u == 1) break;
  }
  return prefix + down_[v];
}

std::uint64_t LoadTree::pe_load(PeId pe) const {
  NodeId v = topo_.leaf_node(pe);
  std::uint64_t load = 0;
  while (true) {
    load += add_[v];
    if (v == 1) break;
    v = Topology::parent(v);
  }
  return load;
}

std::vector<std::uint64_t> LoadTree::pe_loads() const {
  // One DFS carrying the ancestor add-sum; O(N) total. The stack is the
  // tree-owned scratch buffer, so only the returned vector allocates.
  std::vector<std::uint64_t> loads(topo_.n_leaves(), 0);
  scratch_.clear();
  scratch_.push_back({Topology::root(), 0});
  while (!scratch_.empty()) {
    const auto [v, prefix] = scratch_.back();
    scratch_.pop_back();
    const std::uint64_t here = prefix + add_[v];
    if (topo_.is_leaf(v)) {
      loads[v - topo_.n_leaves()] = here;
    } else {
      scratch_.push_back({Topology::right(v), here});
      scratch_.push_back({Topology::left(v), here});
    }
  }
  return loads;
}

void LoadTree::min_load_dfs(NodeId v, std::uint32_t levels_left,
                            std::uint64_t prefix, NodeId& best,
                            std::uint64_t& best_load,
                            std::uint64_t& visits) const {
  ++visits;
  if (levels_left == 0) {
    // Max PE load inside v: ancestor add-sum plus the subtree aggregate.
    const std::uint64_t value = prefix + down_[v];
    if (value < best_load) {
      best_load = value;
      best = v;
    }
    return;
  }
  const std::uint64_t here = prefix + add_[v];
  if (here >= best_load) return;  // cannot beat the incumbent
  // Left child first so ties resolve to the leftmost submachine; re-check
  // the bound before the right child since the left may have tightened it.
  min_load_dfs(Topology::left(v), levels_left - 1, here, best, best_load,
               visits);
  if (here >= best_load) return;
  min_load_dfs(Topology::right(v), levels_left - 1, here, best, best_load,
               visits);
}

NodeId LoadTree::min_load_node(std::uint64_t size) const {
  const std::uint32_t target_depth = topo_.depth_for_size(size);
  NodeId best = kInvalidNode;
  std::uint64_t best_load = UINT64_MAX;

  // DFS with branch-and-bound pruning: the max load of any target-level
  // node below v is at least the add-sum of its ancestors (prefix), so
  // subtrees with prefix >= best cannot improve on an already-found
  // candidate. Recursion depth is at most log N; no allocation per query.
  std::uint64_t visits = 0;
  min_load_dfs(Topology::root(), target_depth, 0, best, best_load, visits);
  obs::bump(obs::Counter::kMinLoadNodeCalls);
  obs::bump(obs::Counter::kMinLoadNodeVisits, visits);
  PARTREE_ASSERT(best != kInvalidNode, "min_load_node found no candidate");
  return best;
}

void LoadTree::clear() {
  std::fill(add_.begin(), add_.end(), 0);
  std::fill(down_.begin(), down_.end(), 0);
  active_size_ = 0;
  active_tasks_ = 0;
}

std::uint64_t LoadTree::digest() const {
  util::Fnv fnv;
  fnv.mix(topo_.n_leaves());
  for (NodeId v = 1; v <= topo_.n_nodes(); ++v) fnv.mix(add_[v]);
  fnv.mix(down_[1]);
  fnv.mix(active_size_);
  fnv.mix(active_tasks_);
  return fnv.value();
}

void LoadTree::debug_corrupt_add(NodeId v, std::uint64_t count) {
  PARTREE_ASSERT(topo_.valid(v), "invalid node");
  add_[v] = count;  // aggregates deliberately left stale
}

}  // namespace partree::tree
