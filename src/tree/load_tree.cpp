#include "tree/load_tree.hpp"

#include <algorithm>

#include "obs/counters.hpp"

namespace partree::tree {

LoadTree::LoadTree(Topology topo)
    : topo_(topo),
      add_(topo.n_nodes() + 1, 0),
      down_(topo.n_nodes() + 1, 0) {}

void LoadTree::update_path(NodeId v) {
  // Recompute `down` from v up to the root.
  while (v >= 1) {
    const std::uint64_t below =
        topo_.is_leaf(v) ? 0 : std::max(down_[Topology::left(v)],
                                        down_[Topology::right(v)]);
    down_[v] = add_[v] + below;
    if (v == 1) break;
    v = Topology::parent(v);
  }
}

void LoadTree::assign(NodeId v) {
  PARTREE_ASSERT(topo_.valid(v), "assign to invalid node");
  ++add_[v];
  active_size_ += topo_.subtree_size(v);
  ++active_tasks_;
  update_path(v);
}

void LoadTree::release(NodeId v) {
  PARTREE_ASSERT(topo_.valid(v), "release of invalid node");
  PARTREE_ASSERT(add_[v] > 0, "release with no task rooted at node");
  --add_[v];
  active_size_ -= topo_.subtree_size(v);
  --active_tasks_;
  update_path(v);
}

std::uint64_t LoadTree::subtree_max(NodeId v) const {
  PARTREE_ASSERT(topo_.valid(v), "subtree_max of invalid node");
  std::uint64_t prefix = 0;
  for (NodeId u = Topology::parent(v); u >= 1; u = Topology::parent(u)) {
    prefix += add_[u];
    if (u == 1) break;
  }
  return prefix + down_[v];
}

std::uint64_t LoadTree::pe_load(PeId pe) const {
  NodeId v = topo_.leaf_node(pe);
  std::uint64_t load = 0;
  while (true) {
    load += add_[v];
    if (v == 1) break;
    v = Topology::parent(v);
  }
  return load;
}

std::vector<std::uint64_t> LoadTree::pe_loads() const {
  // One DFS carrying the ancestor add-sum; O(N) total.
  std::vector<std::uint64_t> loads(topo_.n_leaves(), 0);
  struct Frame {
    NodeId node;
    std::uint64_t prefix;
  };
  std::vector<Frame> stack{{Topology::root(), 0}};
  while (!stack.empty()) {
    const auto [v, prefix] = stack.back();
    stack.pop_back();
    const std::uint64_t here = prefix + add_[v];
    if (topo_.is_leaf(v)) {
      loads[v - topo_.n_leaves()] = here;
    } else {
      stack.push_back({Topology::right(v), here});
      stack.push_back({Topology::left(v), here});
    }
  }
  return loads;
}

NodeId LoadTree::min_load_node(std::uint64_t size) const {
  const std::uint32_t target_depth = topo_.depth_for_size(size);
  NodeId best = kInvalidNode;
  std::uint64_t best_load = UINT64_MAX;

  // DFS, left child first so ties resolve to the leftmost submachine.
  // Prune: the max load of any target-level node below v is at least the
  // add-sum of its ancestors (prefix), so subtrees with prefix >= best
  // cannot improve on an already-found candidate.
  struct Frame {
    NodeId node;
    std::uint64_t prefix;
  };
  std::vector<Frame> stack{{Topology::root(), 0}};
  std::uint64_t visits = 0;
  while (!stack.empty()) {
    const auto [v, prefix] = stack.back();
    stack.pop_back();
    ++visits;
    const std::uint64_t here = prefix + add_[v];
    if (topo_.depth(v) == target_depth) {
      // Max PE load inside v: ancestor add-sum plus the subtree aggregate.
      const std::uint64_t value = prefix + down_[v];
      if (value < best_load) {
        best_load = value;
        best = v;
      }
      continue;
    }
    if (here >= best_load) continue;  // cannot beat the incumbent
    // Push right first so left is explored first (leftmost tie-break).
    stack.push_back({Topology::right(v), here});
    stack.push_back({Topology::left(v), here});
  }
  obs::bump(obs::Counter::kMinLoadNodeCalls);
  obs::bump(obs::Counter::kMinLoadNodeVisits, visits);
  PARTREE_ASSERT(best != kInvalidNode, "min_load_node found no candidate");
  return best;
}

void LoadTree::clear() {
  std::fill(add_.begin(), add_.end(), 0);
  std::fill(down_.begin(), down_.end(), 0);
  active_size_ = 0;
  active_tasks_ = 0;
}

}  // namespace partree::tree
