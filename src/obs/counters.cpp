#include "obs/counters.hpp"

#include <atomic>

#include "obs/shard_registry.hpp"

namespace partree::obs {
namespace {

std::atomic<bool> g_counters_enabled{true};

// Leaked on purpose: worker threads may outlive static destruction order,
// and their shard handles dereference the registry on thread exit.
detail::ShardRegistry<Counters>& registry() {
  static auto* r = new detail::ShardRegistry<Counters>();
  return *r;
}

}  // namespace

std::string_view counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kEventsProcessed: return "events_processed";
    case Counter::kArrivals: return "arrivals";
    case Counter::kDepartures: return "departures";
    case Counter::kTasksPlaced: return "tasks_placed";
    case Counter::kTasksRemoved: return "tasks_removed";
    case Counter::kMigrationsApplied: return "migrations_applied";
    case Counter::kReallocRounds: return "realloc_rounds";
    case Counter::kMinLoadNodeCalls: return "min_load_node_calls";
    case Counter::kMinLoadNodeVisits: return "min_load_node_visits";
    case Counter::kParallelTasks: return "parallel_tasks";
    case Counter::kCount: break;
  }
  return "unknown";
}

void set_counters_enabled(bool enabled) noexcept {
  g_counters_enabled.store(enabled, std::memory_order_relaxed);
}

bool counters_enabled() noexcept {
  return g_counters_enabled.load(std::memory_order_relaxed);
}

void bump(Counter c, std::uint64_t n) noexcept {
  if (!counters_enabled()) return;
  registry().local()[c] += n;
}

Counters thread_counters() noexcept { return registry().local(); }

Counters global_counters() { return registry().aggregate(); }

void reset_counters() { registry().reset(); }

}  // namespace partree::obs
