#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>

#include "obs/shard_registry.hpp"

namespace partree::obs {
namespace {

constexpr std::uint64_t kNoMin = std::numeric_limits<std::uint64_t>::max();

std::atomic<bool> g_metrics_enabled{true};
std::atomic<bool> g_duration_metrics_enabled{false};

// Every cell is written by exactly one thread (its shard owner), so
// updates are relaxed load+store pairs -- no lock-prefixed RMW on the hot
// path -- while concurrent snapshot reads from another thread stay
// race-free (TSan-clean), unlike the plain-integer counter shards.
void add_relaxed(std::atomic<std::uint64_t>& cell, std::uint64_t n) noexcept {
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

void max_relaxed(std::atomic<std::uint64_t>& cell, std::uint64_t v) noexcept {
  if (v > cell.load(std::memory_order_relaxed)) {
    cell.store(v, std::memory_order_relaxed);
  }
}

void min_relaxed(std::atomic<std::uint64_t>& cell, std::uint64_t v) noexcept {
  if (v < cell.load(std::memory_order_relaxed)) {
    cell.store(v, std::memory_order_relaxed);
  }
}

struct AtomicHistogram {
  std::array<std::atomic<std::uint64_t>, kLog2Buckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{kNoMin};
  std::atomic<std::uint64_t> max{0};

  void record(std::uint64_t v) noexcept {
    const std::size_t b =
        v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
    add_relaxed(buckets[b], 1);
    add_relaxed(count, 1);
    add_relaxed(sum, v);
    min_relaxed(min, v);
    max_relaxed(max, v);
  }

  void copy_from(const AtomicHistogram& o) noexcept {
    for (std::size_t b = 0; b < kLog2Buckets; ++b) {
      buckets[b].store(o.buckets[b].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    count.store(o.count.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    sum.store(o.sum.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    min.store(o.min.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
    max.store(o.max.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  }

  void merge_from(const AtomicHistogram& o) noexcept {
    for (std::size_t b = 0; b < kLog2Buckets; ++b) {
      add_relaxed(buckets[b], o.buckets[b].load(std::memory_order_relaxed));
    }
    add_relaxed(count, o.count.load(std::memory_order_relaxed));
    add_relaxed(sum, o.sum.load(std::memory_order_relaxed));
    min_relaxed(min, o.min.load(std::memory_order_relaxed));
    max_relaxed(max, o.max.load(std::memory_order_relaxed));
  }

  [[nodiscard]] MetricHistogram snapshot() const {
    MetricHistogram out;
    for (std::size_t b = 0; b < kLog2Buckets; ++b) {
      out.buckets[b] = buckets[b].load(std::memory_order_relaxed);
    }
    out.count = count.load(std::memory_order_relaxed);
    out.sum = sum.load(std::memory_order_relaxed);
    const std::uint64_t lo = min.load(std::memory_order_relaxed);
    out.min = out.count == 0 || lo == kNoMin ? 0 : lo;
    out.max = max.load(std::memory_order_relaxed);
    return out;
  }
};

/// The per-thread shard; satisfies ShardRegistry's contract (zero default,
/// merge, copy assignment) with explicitly-relaxed copies since atomics
/// are not copyable by default.
struct MetricsShard {
  std::array<AtomicHistogram, kNumDurationMetrics> durations{};
  std::array<AtomicHistogram, kNumValueMetrics> values{};
  std::array<std::atomic<std::uint64_t>, kNumGaugeMetrics> gauges{};

  MetricsShard() = default;
  MetricsShard(const MetricsShard& o) { *this = o; }
  MetricsShard& operator=(const MetricsShard& o) {
    if (this == &o) return *this;
    for (std::size_t i = 0; i < kNumDurationMetrics; ++i) {
      durations[i].copy_from(o.durations[i]);
    }
    for (std::size_t i = 0; i < kNumValueMetrics; ++i) {
      values[i].copy_from(o.values[i]);
    }
    for (std::size_t i = 0; i < kNumGaugeMetrics; ++i) {
      gauges[i].store(o.gauges[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    return *this;
  }

  void merge(const MetricsShard& o) noexcept {
    for (std::size_t i = 0; i < kNumDurationMetrics; ++i) {
      durations[i].merge_from(o.durations[i]);
    }
    for (std::size_t i = 0; i < kNumValueMetrics; ++i) {
      values[i].merge_from(o.values[i]);
    }
    for (std::size_t i = 0; i < kNumGaugeMetrics; ++i) {
      max_relaxed(gauges[i], o.gauges[i].load(std::memory_order_relaxed));
    }
  }
};

// Leaked on purpose (same reasoning as counters.cpp): pool workers may
// retire their shards after static destruction begins.
detail::ShardRegistry<MetricsShard>& registry() {
  static auto* r = new detail::ShardRegistry<MetricsShard>();
  return *r;
}

struct MetricHelp {
  std::string_view name;
  std::string_view help;
};

constexpr MetricHelp kDurationHelp[kNumDurationMetrics] = {
    {"arrival_handle_ns", "One arrival fully handled by the engine, ns."},
    {"departure_handle_ns", "One departure fully handled by the engine, ns."},
    {"realloc_round_ns", "One applied reallocation round, ns."},
    {"realloc_plan_ns",
     "Planning half (maybe_reallocate) of one applied round, ns."},
    {"pool_dispatch_wait_ns",
     "Caller wait for the worker pool to go idle before dispatch, ns."},
    {"pool_region_ns", "One whole parallel region on the calling thread, ns."},
    {"pool_worker_busy_ns", "One worker's participation in one region, ns."},
    {"pool_worker_idle_ns",
     "One worker's parked gap between consecutive regions, ns."},
    {"sweep_shard_ns", "One sweep shard (all its cells), ns."},
    {"serve_queue_wait_ns",
     "One request's wait in the partition-service queue, ns."},
    {"serve_apply_ns",
     "One request applied by the partition-service apply thread, ns."},
};

constexpr MetricHelp kValueHelp[kNumValueMetrics] = {
    {"migration_batch_size",
     "Physical task moves per applied reallocation round."},
    {"migrations_planned",
     "Migrations emitted by the planner per applied reallocation round."},
    {"migrations_applied",
     "Physical task moves (from != to) per applied reallocation round."},
    {"pool_region_items", "Items per dispatched parallel region."},
    {"pool_chunk_items", "Items per chunk claimed off the ticket counter."},
    {"sweep_shard_cells", "Cells per executed sweep shard."},
    {"serve_batch_requests",
     "Requests per applied partition-service epoch batch."},
};

constexpr MetricHelp kGaugeHelp[kNumGaugeMetrics] = {
    {"pool_queue_depth_hwm", "Most items queued at any region dispatch."},
    {"pool_workers_hwm", "Most workers participating in any region."},
    {"serve_queue_depth_hwm",
     "Most requests queued in the partition service."},
};

util::json::Value histogram_to_json(const MetricHistogram& h) {
  util::json::Object obj;
  obj.emplace("count", h.count);
  obj.emplace("sum", h.sum);
  obj.emplace("min", h.min);
  obj.emplace("max", h.max);
  obj.emplace("mean", h.mean());
  obj.emplace("p50", h.quantile(0.5));
  obj.emplace("p90", h.quantile(0.9));
  obj.emplace("p99", h.quantile(0.99));
  util::json::Array buckets;
  for (std::size_t b = 0; b < kLog2Buckets; ++b) {
    if (h.buckets[b] == 0) continue;
    util::json::Array pair;
    pair.emplace_back(static_cast<std::uint64_t>(b));
    pair.emplace_back(h.buckets[b]);
    buckets.emplace_back(std::move(pair));
  }
  obj.emplace("buckets", std::move(buckets));
  return util::json::Value(std::move(obj));
}

void prometheus_histogram(std::string& out, const MetricHelp& meta,
                          const MetricHistogram& h) {
  const std::string family = "partree_" + std::string(meta.name);
  out += "# HELP " + family + " " + std::string(meta.help) + "\n";
  out += "# TYPE " + family + " histogram\n";
  std::size_t top = 0;
  for (std::size_t b = 0; b < kLog2Buckets; ++b) {
    if (h.buckets[b] != 0) top = b;
  }
  std::uint64_t cumulative = 0;
  if (h.count != 0) {
    for (std::size_t b = 0; b <= top; ++b) {
      cumulative += h.buckets[b];
      out += family + "_bucket{le=\"" +
             std::to_string(log2_bucket_upper(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
  }
  out += family + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
  out += family + "_sum " + std::to_string(h.sum) + "\n";
  out += family + "_count " + std::to_string(h.count) + "\n";
}

/// Shared histogram checks for validate_metrics_json; "" when valid.
std::string check_histogram_json(const util::json::Value& section,
                                 std::string_view name) {
  const util::json::Value* entry = section.find(name);
  if (entry == nullptr) {
    return "metrics json: missing histogram '" + std::string(name) + "'";
  }
  const std::uint64_t count = entry->at("count").as_u64();
  const std::uint64_t min = entry->at("min").as_u64();
  const std::uint64_t max = entry->at("max").as_u64();
  for (const std::string_view q : {"sum", "p50", "p90", "p99"}) {
    (void)entry->at(q).as_u64();
  }
  if (min > max) {
    return "metrics json: histogram '" + std::string(name) + "' has min > max";
  }
  std::uint64_t bucket_total = 0;
  for (const util::json::Value& pair : entry->at("buckets").as_array()) {
    const util::json::Array& arr = pair.as_array();
    if (arr.size() != 2) {
      return "metrics json: histogram '" + std::string(name) +
             "' has a malformed bucket pair";
    }
    if (arr[0].as_u64() >= kLog2Buckets) {
      return "metrics json: histogram '" + std::string(name) +
             "' has a bucket index out of range";
    }
    bucket_total += arr[1].as_u64();
  }
  if (bucket_total != count) {
    return "metrics json: histogram '" + std::string(name) +
           "' bucket counts do not sum to count";
  }
  return "";
}

}  // namespace

std::string_view duration_metric_name(DurationMetric m) noexcept {
  const auto i = static_cast<std::size_t>(m);
  return i < kNumDurationMetrics ? kDurationHelp[i].name : "unknown";
}

std::string_view value_metric_name(ValueMetric m) noexcept {
  const auto i = static_cast<std::size_t>(m);
  return i < kNumValueMetrics ? kValueHelp[i].name : "unknown";
}

std::string_view gauge_metric_name(GaugeMetric m) noexcept {
  const auto i = static_cast<std::size_t>(m);
  return i < kNumGaugeMetrics ? kGaugeHelp[i].name : "unknown";
}

std::uint64_t MetricHistogram::quantile(double q) const noexcept {
  if (count == 0) return 0;
  // The extremes are tracked exactly; bucket upper bounds would only
  // blur them (and q = 0 must never report an empty leading bucket).
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double scaled = q * static_cast<double>(count) + 0.5;
  // Clamped to >= 1 so q = 0 walks to the first POPULATED bucket instead
  // of matching an empty bucket 0 at cumulative 0.
  const std::uint64_t target = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(scaled), 1, count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kLog2Buckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= target) {
      return std::clamp(log2_bucket_upper(b), min, max);
    }
  }
  return max;
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_duration_metrics_enabled(bool enabled) noexcept {
  g_duration_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool duration_metrics_enabled() noexcept {
  return g_duration_metrics_enabled.load(std::memory_order_relaxed);
}

void record_duration(DurationMetric m, std::uint64_t ns) noexcept {
  if (!metrics_enabled()) return;
  registry().local().durations[static_cast<std::size_t>(m)].record(ns);
}

void record_value(ValueMetric m, std::uint64_t value) noexcept {
  if (!metrics_enabled()) return;
  registry().local().values[static_cast<std::size_t>(m)].record(value);
}

void gauge_max(GaugeMetric m, std::uint64_t value) noexcept {
  if (!metrics_enabled()) return;
  max_relaxed(registry().local().gauges[static_cast<std::size_t>(m)], value);
}

MetricsSnapshot snapshot_metrics() {
  const MetricsShard merged = registry().aggregate();
  MetricsSnapshot out;
  for (std::size_t i = 0; i < kNumDurationMetrics; ++i) {
    out.durations[i] = merged.durations[i].snapshot();
  }
  for (std::size_t i = 0; i < kNumValueMetrics; ++i) {
    out.values[i] = merged.values[i].snapshot();
  }
  for (std::size_t i = 0; i < kNumGaugeMetrics; ++i) {
    out.gauges[i] = merged.gauges[i].load(std::memory_order_relaxed);
  }
  return out;
}

void reset_metrics() { registry().reset(); }

util::json::Value metrics_to_json(const MetricsSnapshot& snap) {
  util::json::Object durations;
  for (std::size_t i = 0; i < kNumDurationMetrics; ++i) {
    durations.emplace(std::string(kDurationHelp[i].name),
                      histogram_to_json(snap.durations[i]));
  }
  util::json::Object values;
  for (std::size_t i = 0; i < kNumValueMetrics; ++i) {
    values.emplace(std::string(kValueHelp[i].name),
                   histogram_to_json(snap.values[i]));
  }
  util::json::Object gauges;
  for (std::size_t i = 0; i < kNumGaugeMetrics; ++i) {
    gauges.emplace(std::string(kGaugeHelp[i].name), snap.gauges[i]);
  }
  util::json::Object root;
  root.emplace("schema", "partree-metrics-v1");
  root.emplace("durations", std::move(durations));
  root.emplace("values", std::move(values));
  root.emplace("gauges", std::move(gauges));
  return util::json::Value(std::move(root));
}

std::string metrics_to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (std::size_t i = 0; i < kNumDurationMetrics; ++i) {
    prometheus_histogram(out, kDurationHelp[i], snap.durations[i]);
  }
  for (std::size_t i = 0; i < kNumValueMetrics; ++i) {
    prometheus_histogram(out, kValueHelp[i], snap.values[i]);
  }
  for (std::size_t i = 0; i < kNumGaugeMetrics; ++i) {
    const std::string family = "partree_" + std::string(kGaugeHelp[i].name);
    out += "# HELP " + family + " " + std::string(kGaugeHelp[i].help) + "\n";
    out += "# TYPE " + family + " gauge\n";
    out += family + " " + std::to_string(snap.gauges[i]) + "\n";
  }
  return out;
}

std::string validate_metrics_json(const util::json::Value& v) {
  try {
    const std::string& schema = v.at("schema").as_string();
    if (schema != "partree-metrics-v1") {
      return "metrics json: unknown schema '" + schema + "'";
    }
    const util::json::Value& durations = v.at("durations");
    for (std::size_t i = 0; i < kNumDurationMetrics; ++i) {
      if (std::string err = check_histogram_json(durations,
                                                 kDurationHelp[i].name);
          !err.empty()) {
        return err;
      }
    }
    const util::json::Value& values = v.at("values");
    for (std::size_t i = 0; i < kNumValueMetrics; ++i) {
      if (std::string err = check_histogram_json(values, kValueHelp[i].name);
          !err.empty()) {
        return err;
      }
    }
    const util::json::Value& gauges = v.at("gauges");
    for (std::size_t i = 0; i < kNumGaugeMetrics; ++i) {
      if (gauges.find(kGaugeHelp[i].name) == nullptr) {
        return "metrics json: missing gauge '" +
               std::string(kGaugeHelp[i].name) + "'";
      }
      (void)gauges.at(kGaugeHelp[i].name).as_u64();
    }
  } catch (const std::exception& e) {
    return std::string("metrics json: ") + e.what();
  }
  return "";
}

}  // namespace partree::obs
