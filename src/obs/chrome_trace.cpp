#include "obs/chrome_trace.hpp"

#include <cstdio>
#include <fstream>

#include "util/json.hpp"

namespace partree::obs {
namespace {

// Microsecond timestamps with nanosecond resolution, the format's unit.
std::string format_us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::string common_fields(std::string_view name, std::string_view ph,
                          std::uint64_t tid, std::uint64_t ts_ns) {
  std::string out = "{\"name\":";
  out += util::json::quote(name);
  out += ",\"ph\":\"";
  out += ph;
  out += "\",\"pid\":0,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  out += format_us(ts_ns);
  return out;
}

}  // namespace

void ChromeTraceSink::append_event(std::string_view body) {
  if (!events_.empty()) events_ += ",\n";
  events_ += body;
}

void ChromeTraceSink::consume(const ThreadTrace& chunk) {
  std::lock_guard lock(mutex_);
  dropped_ += chunk.dropped;
  if (chunk.events.empty()) return;

  if (tids_seen_.insert(chunk.tid).second) {
    if (tids_seen_.size() == 1) {
      append_event(
          "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"partree\"}}");
    }
    std::string meta =
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
        std::to_string(chunk.tid) + ",\"args\":{\"name\":\"thread-" +
        std::to_string(chunk.tid) + "\"}}";
    append_event(meta);
  }

  for (const TraceEvent& ev : chunk.events) {
    switch (ev.kind) {
      case TraceEventKind::kSpan: {
        const auto phase = static_cast<Phase>(ev.id);
        ++spans_[ev.id];
        std::string e = common_fields(phase_name(phase), "X", chunk.tid,
                                      ev.a);
        e += ",\"dur\":";
        e += format_us(ev.b - ev.a);
        e += ",\"cat\":\"phase\"}";
        append_event(e);
        break;
      }
      case TraceEventKind::kInstant: {
        const auto instant = static_cast<Instant>(ev.id);
        ++instants_[ev.id];
        std::string e = common_fields(instant_name(instant), "i", chunk.tid,
                                      ev.ts_ns);
        e += ",\"s\":\"t\",\"cat\":\"engine\",\"args\":{\"value\":";
        e += std::to_string(ev.a);
        e += "}}";
        append_event(e);
        break;
      }
      case TraceEventKind::kCounters: {
        ++counter_samples_;
        const struct {
          const char* name;
          std::uint64_t value;
        } series[] = {{"max_load", ev.a},
                      {"l_star", ev.b},
                      {"active_size", ev.c},
                      {"active_tasks", ev.d}};
        for (const auto& [name, value] : series) {
          std::string e = common_fields(name, "C", chunk.tid, ev.ts_ns);
          e += ",\"args\":{\"";
          e += name;
          e += "\":";
          e += std::to_string(value);
          e += "}}";
          append_event(e);
        }
        break;
      }
    }
  }
}

std::uint64_t ChromeTraceSink::span_count(Phase p) const {
  std::lock_guard lock(mutex_);
  return spans_[static_cast<std::size_t>(p)];
}

std::uint64_t ChromeTraceSink::instant_count(Instant i) const {
  std::lock_guard lock(mutex_);
  return instants_[static_cast<std::size_t>(i)];
}

std::uint64_t ChromeTraceSink::counter_samples() const {
  std::lock_guard lock(mutex_);
  return counter_samples_;
}

std::uint64_t ChromeTraceSink::dropped_events() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::string ChromeTraceSink::document() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += events_;
  out += "\n]}";
  return out;
}

bool ChromeTraceSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << document() << "\n";
  return static_cast<bool>(out);
}

}  // namespace partree::obs
