#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <mutex>

#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "util/file.hpp"
#include "util/json.hpp"

namespace partree::obs {
namespace {

static_assert(kFlightRecorderEvents <= kTraceRingCapacity,
              "flight record must fit in the ring");
static_assert((kTraceRingCapacity & (kTraceRingCapacity - 1)) == 0,
              "ring capacity must be a power of two");

struct Ring {
  std::uint64_t tid = 0;
  std::vector<TraceEvent> slots;  // kTraceRingCapacity once registered
  std::uint64_t next = 0;         // events ever written on this thread
  std::uint64_t drained = 0;      // events already handed to a sink
};

// Leaked on purpose (same reasoning as counters.cpp): rings flush on
// thread exit, which may happen after static destruction begins.
struct Registry {
  std::mutex mutex;
  std::vector<Ring*> rings;
  std::uint64_t next_tid = 0;
  TraceSink* sink = nullptr;  // guarded by mutex
};

Registry& registry() {
  static auto* r = new Registry();
  return *r;
}

// Fast-path mirror of `registry().sink != nullptr`.
std::atomic<bool> g_tracing{false};

// Flight-recorder kill switch; off only while bench_harness prices the
// default store against a bare run.
std::atomic<bool> g_recording{true};

// Hands [max(drained, next - capacity), next) to the sink and advances
// `drained`. Caller holds the registry mutex.
void flush_locked(Registry& reg, Ring& ring) {
  if (reg.sink == nullptr) {
    ring.drained = ring.next;
    return;
  }
  const std::uint64_t floor =
      ring.next > kTraceRingCapacity ? ring.next - kTraceRingCapacity : 0;
  const std::uint64_t from = ring.drained > floor ? ring.drained : floor;
  if (from == ring.next && from == ring.drained) return;
  ThreadTrace chunk;
  chunk.tid = ring.tid;
  chunk.dropped = from - ring.drained;
  chunk.events.reserve(static_cast<std::size_t>(ring.next - from));
  for (std::uint64_t s = from; s < ring.next; ++s) {
    chunk.events.push_back(ring.slots[s & (kTraceRingCapacity - 1)]);
  }
  ring.drained = ring.next;
  reg.sink->consume(chunk);
}

// Thread-local ring handle: registers on first event, flushes + retires on
// thread exit (worker joins therefore lose nothing while a sink is armed).
struct RingHandle {
  Ring ring;

  RingHandle() {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    ring.tid = reg.next_tid++;
    ring.slots.resize(kTraceRingCapacity);
    reg.rings.push_back(&ring);
  }
  ~RingHandle() {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    flush_locked(reg, ring);
    std::erase(reg.rings, &ring);
  }
  RingHandle(const RingHandle&) = delete;
  RingHandle& operator=(const RingHandle&) = delete;
};

Ring& local_ring() {
  static thread_local RingHandle handle;
  return handle.ring;
}

// The single producer-side write: one slot store plus an index bump. While
// a sink is armed the ring flushes itself just before it would wrap.
void push_event(TraceEvent ev) noexcept {
  if (!g_recording.load(std::memory_order_relaxed)) return;
  Ring& ring = local_ring();
  ev.seq = ring.next;
  ring.slots[ring.next & (kTraceRingCapacity - 1)] = ev;
  ++ring.next;
  if (tracing_enabled() && ring.next - ring.drained >= kTraceRingCapacity) {
    Registry& reg = registry();
    std::lock_guard lock(reg.mutex);
    flush_locked(reg, ring);
  }
}

util::json::Value event_to_json(const TraceEvent& ev) {
  util::json::Object obj;
  obj.emplace("seq", ev.seq);
  obj.emplace("ts_ns", ev.ts_ns);
  switch (ev.kind) {
    case TraceEventKind::kSpan: {
      obj.emplace("kind", "span");
      obj.emplace("name", phase_name(static_cast<Phase>(ev.id)));
      util::json::Object args;
      args.emplace("start_ns", ev.a);
      args.emplace("end_ns", ev.b);
      obj.emplace("args", std::move(args));
      break;
    }
    case TraceEventKind::kInstant: {
      obj.emplace("kind", "instant");
      obj.emplace("name", instant_name(static_cast<Instant>(ev.id)));
      util::json::Object args;
      args.emplace("value", ev.a);
      obj.emplace("args", std::move(args));
      break;
    }
    case TraceEventKind::kCounters: {
      obj.emplace("kind", "counters");
      obj.emplace("name", "counters");
      util::json::Object args;
      args.emplace("max_load", ev.a);
      args.emplace("l_star", ev.b);
      args.emplace("active_size", ev.c);
      args.emplace("active_tasks", ev.d);
      obj.emplace("args", std::move(args));
      break;
    }
  }
  return util::json::Value(std::move(obj));
}

std::mutex g_crash_path_mutex;
std::string& crash_path_override() {
  static auto* path = new std::string();
  return *path;
}

}  // namespace

std::string_view instant_name(Instant i) noexcept {
  switch (i) {
    case Instant::kArrival: return "arrival";
    case Instant::kDeparture: return "departure";
    case Instant::kReallocRound: return "realloc_round";
    case Instant::kMigrationBatch: return "migration_batch";
    case Instant::kFaultInjected: return "fault_injected";
    case Instant::kStateDigest: return "state_digest";
    case Instant::kSweepShard: return "sweep_shard";
    case Instant::kServeBatch: return "serve_batch";
    case Instant::kCount: break;
  }
  return "unknown";
}

void CountingTraceSink::consume(const ThreadTrace& chunk) {
  for (const TraceEvent& ev : chunk.events) {
    switch (ev.kind) {
      case TraceEventKind::kSpan: ++spans_[ev.id]; break;
      case TraceEventKind::kInstant: ++instants_[ev.id]; break;
      case TraceEventKind::kCounters: ++counter_samples_; break;
    }
    ++total_;
  }
  dropped_ += chunk.dropped;
}

void set_trace_sink(TraceSink* sink) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  if (reg.sink != nullptr && sink == nullptr) {
    // Disarming: hand the sink whatever is still buffered.
    for (Ring* ring : reg.rings) flush_locked(reg, *ring);
  }
  reg.sink = sink;
  if (sink != nullptr) {
    // Arming: the sink sees only events recorded from this point on; the
    // stale flight-recorder tail stays out of the timeline.
    for (Ring* ring : reg.rings) ring->drained = ring->next;
  }
  g_tracing.store(sink != nullptr, std::memory_order_relaxed);
}

bool tracing_enabled() noexcept {
  return g_tracing.load(std::memory_order_relaxed);
}

void set_flight_recorder_enabled(bool enabled) noexcept {
  g_recording.store(enabled, std::memory_order_relaxed);
}

bool flight_recorder_enabled() noexcept {
  return g_recording.load(std::memory_order_relaxed);
}

void drain_trace() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (Ring* ring : reg.rings) flush_locked(reg, *ring);
}

void emit_instant(Instant i, std::uint64_t payload) noexcept {
  TraceEvent ev;
  ev.ts_ns = tracing_enabled() ? detail::monotonic_ns() : 0;
  ev.kind = TraceEventKind::kInstant;
  ev.id = static_cast<std::uint8_t>(i);
  ev.a = payload;
  push_event(ev);
}

void emit_counters(std::uint64_t max_load, std::uint64_t l_star,
                   std::uint64_t active_size,
                   std::uint64_t active_tasks) noexcept {
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.ts_ns = detail::monotonic_ns();
  ev.kind = TraceEventKind::kCounters;
  ev.a = max_load;
  ev.b = l_star;
  ev.c = active_size;
  ev.d = active_tasks;
  push_event(ev);
}

std::vector<TraceEvent> thread_flight_record() {
  const Ring& ring = local_ring();
  const std::uint64_t from = ring.next > kFlightRecorderEvents
                                 ? ring.next - kFlightRecorderEvents
                                 : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(ring.next - from));
  for (std::uint64_t s = from; s < ring.next; ++s) {
    out.push_back(ring.slots[s & (kTraceRingCapacity - 1)]);
  }
  return out;
}

void set_crash_dump_path(std::string path) {
  std::lock_guard lock(g_crash_path_mutex);
  crash_path_override() = std::move(path);
}

std::string write_crash_dump(std::string_view reason) {
  util::json::Object root;
  root.emplace("schema", "partree-crash-v1");
  root.emplace("reason", std::string(reason));

  util::json::Array flight;
  for (const TraceEvent& ev : thread_flight_record()) {
    flight.push_back(event_to_json(ev));
  }
  root.emplace("flight_record", std::move(flight));

  const Counters counters = global_counters();
  util::json::Object counters_obj;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    counters_obj.emplace(std::string(counter_name(c)), counters[c]);
  }
  root.emplace("counters", std::move(counters_obj));

  const PhaseTimes phases = global_phase_times();
  util::json::Object phases_obj;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const auto p = static_cast<Phase>(i);
    util::json::Object entry;
    entry.emplace("ns", phases.nanos(p));
    entry.emplace("spans", phases.count(p));
    phases_obj.emplace(std::string(phase_name(p)), std::move(entry));
  }
  root.emplace("phase_times", std::move(phases_obj));

  // The full partree-metrics-v1 document rides along so invariant-failure
  // forensics include the latency/queue distributions leading up to the
  // crash. Snapshotting mid-flight is safe: metrics cells are
  // single-writer relaxed atomics.
  root.emplace("metrics", metrics_to_json(snapshot_metrics()));

  const std::string dump = util::json::Value(std::move(root)).dump();
  std::fprintf(stderr, "partree crash dump:\n%s\n", dump.c_str());

  std::string path;
  {
    std::lock_guard lock(g_crash_path_mutex);
    path = crash_path_override();
  }
  if (path.empty()) {
    // Default: partree_crash_<unix_ts>.json in PARTREE_CRASH_DIR (created
    // if missing), falling back to the working directory. Dumps used to
    // land unconditionally in the CWD, which littered source checkouts.
    path = "partree_crash_" +
           std::to_string(static_cast<long long>(std::time(nullptr))) +
           ".json";
    if (const char* dir = std::getenv("PARTREE_CRASH_DIR");
        dir != nullptr && *dir != '\0') {
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr,
                     "partree: cannot create PARTREE_CRASH_DIR %s (%s); "
                     "dumping to the working directory\n",
                     dir, ec.message().c_str());
      } else {
        path = std::string(dir) + "/" + path;
      }
    }
  }
  // Atomic tmp + rename: a crash mid-dump must never leave a truncated
  // JSON file masquerading as a complete crash record.
  if (!util::write_file_atomic(path, dump + "\n")) {
    std::fprintf(stderr, "partree: cannot write crash dump %s\n",
                 path.c_str());
    return "";
  }
  std::fprintf(stderr, "partree: crash dump written to %s\n", path.c_str());
  return path;
}

namespace detail {

void emit_span(Phase phase, std::uint64_t start_ns,
               std::uint64_t end_ns) noexcept {
  TraceEvent ev;
  ev.ts_ns = start_ns;
  ev.kind = TraceEventKind::kSpan;
  ev.id = static_cast<std::uint8_t>(phase);
  ev.a = start_ns;
  ev.b = end_ns;
  push_event(ev);
}

}  // namespace detail
}  // namespace partree::obs
