// Chrome trace-event export (chrome://tracing and ui.perfetto.dev).
//
// ChromeTraceSink serializes drained TraceEvents incrementally into the
// trace-event JSON format, one compact object per event:
//
//   * phase spans   -> "X" (complete) duration events, one track per
//                      thread ("M" thread_name metadata per tid)
//   * instants      -> "i" instant events on the emitting thread's track
//   * counter samples -> "C" counter events, one track per series
//                      (max_load, l_star, active_size, active_tasks)
//
// Timestamps are microseconds (the format's unit) from the monotonic
// clock. The sink buffers serialized text, not Values, so multi-hundred-
// thousand-event traces stay ~100 bytes per event; `write_file` wraps the
// buffer as {"displayTimeUnit": "ms", "traceEvents": [...]}.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "obs/trace.hpp"

namespace partree::obs {

class ChromeTraceSink final : public TraceSink {
 public:
  void consume(const ThreadTrace& chunk) override;

  /// Spans serialized so far for one phase.
  [[nodiscard]] std::uint64_t span_count(Phase p) const;
  /// Instants serialized so far for one kind.
  [[nodiscard]] std::uint64_t instant_count(Instant i) const;
  /// Counter samples serialized so far (each produces 4 "C" events).
  [[nodiscard]] std::uint64_t counter_samples() const;
  /// Events that were overwritten before draining (should be 0; a traced
  /// ring flushes itself before wrapping).
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// The complete JSON document serialized so far.
  [[nodiscard]] std::string document() const;

  /// Writes `document()` to `path`; false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  void append_event(std::string_view body);

  mutable std::mutex mutex_;
  std::string events_;  ///< comma-joined serialized event objects
  std::set<std::uint64_t> tids_seen_;
  std::array<std::uint64_t, kNumPhases> spans_{};
  std::array<std::uint64_t, kNumInstants> instants_{};
  std::uint64_t counter_samples_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace partree::obs
