#include "obs/bench_schema.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace partree::obs {
namespace {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

util::json::Value counters_to_json(const Counters& counters) {
  util::json::Object obj;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    obj.emplace(std::string(counter_name(c)), counters[c]);
  }
  return util::json::Value(std::move(obj));
}

Counters counters_from_json(const util::json::Value& v) {
  Counters out;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    if (const util::json::Value* entry = v.find(counter_name(c))) {
      out[c] = entry->as_u64();
    }
  }
  return out;
}

// A wall-time field that is absent, non-numeric (e.g. the string "NaN"),
// or non-finite renames the generic parse error to point at the suite and
// field -- a damaged baseline must fail loudly, not poison comparisons.
double finite_ms(const util::json::Value& suite, std::string_view key,
                 const std::string& name) {
  double value = 0.0;
  try {
    value = suite.at(key).as_double();
  } catch (const std::exception& e) {
    throw std::runtime_error("bench json: suite '" + name + "' field '" +
                             std::string(key) + "': " + e.what());
  }
  if (!std::isfinite(value)) {
    throw std::runtime_error("bench json: suite '" + name + "' field '" +
                             std::string(key) + "' is not a finite number");
  }
  return value;
}

}  // namespace

void BenchSuite::finalize_stats() {
  if (wall_ms.empty()) {
    median_ms = p90_ms = mean_ms = min_ms = 0.0;
    return;
  }
  std::vector<double> sorted = wall_ms;
  std::sort(sorted.begin(), sorted.end());
  median_ms = quantile_sorted(sorted, 0.5);
  p90_ms = quantile_sorted(sorted, 0.9);
  min_ms = sorted.front();
  double sum = 0.0;
  for (const double w : sorted) sum += w;
  mean_ms = sum / static_cast<double>(sorted.size());
}

const BenchSuite* BenchReport::find_suite(std::string_view name) const {
  for (const BenchSuite& suite : suites) {
    if (suite.name == name) return &suite;
  }
  return nullptr;
}

util::json::Value to_json(const BenchReport& report) {
  util::json::Array suites;
  for (const BenchSuite& suite : report.suites) {
    util::json::Object s;
    s.emplace("name", suite.name);
    s.emplace("n", suite.n);
    s.emplace("reps", suite.reps);
    util::json::Array walls;
    for (const double w : suite.wall_ms) walls.emplace_back(w);
    s.emplace("wall_ms", std::move(walls));
    s.emplace("median_ms", suite.median_ms);
    s.emplace("p90_ms", suite.p90_ms);
    s.emplace("mean_ms", suite.mean_ms);
    s.emplace("min_ms", suite.min_ms);
    s.emplace("counters", counters_to_json(suite.counters));
    if (suite.counter_overhead_pct >= 0.0) {
      s.emplace("counter_overhead_pct", suite.counter_overhead_pct);
    }
    if (suite.trace_overhead_pct >= 0.0) {
      s.emplace("trace_overhead_pct", suite.trace_overhead_pct);
    }
    if (suite.metrics_overhead_pct >= 0.0) {
      s.emplace("metrics_overhead_pct", suite.metrics_overhead_pct);
    }
    suites.emplace_back(std::move(s));
  }

  util::json::Object root;
  root.emplace("schema", report.schema);
  root.emplace("date", report.date);
  root.emplace("git_sha", report.git_sha);
  root.emplace("n_threads", report.n_threads);
  root.emplace("smoke", report.smoke);
  root.emplace("suites", std::move(suites));
  return util::json::Value(std::move(root));
}

BenchReport report_from_json(const util::json::Value& v) {
  BenchReport report;
  report.schema = v.at("schema").as_string();
  if (report.schema != "partree-bench-v1") {
    throw std::runtime_error("bench json: unknown schema '" + report.schema +
                             "'");
  }
  report.date = v.at("date").as_string();
  report.git_sha = v.at("git_sha").as_string();
  report.n_threads = v.at("n_threads").as_u64();
  if (const util::json::Value* smoke = v.find("smoke")) {
    report.smoke = smoke->as_bool();
  }
  for (const util::json::Value& s : v.at("suites").as_array()) {
    BenchSuite suite;
    suite.name = s.at("name").as_string();
    suite.n = s.at("n").as_u64();
    suite.reps = s.at("reps").as_u64();
    for (const util::json::Value& w : s.at("wall_ms").as_array()) {
      double wall = 0.0;
      try {
        wall = w.as_double();
      } catch (const std::exception& e) {
        throw std::runtime_error("bench json: suite '" + suite.name +
                                 "' field 'wall_ms': " + e.what());
      }
      if (!std::isfinite(wall)) {
        throw std::runtime_error("bench json: suite '" + suite.name +
                                 "' field 'wall_ms' has a non-finite entry");
      }
      suite.wall_ms.push_back(wall);
    }
    suite.median_ms = finite_ms(s, "median_ms", suite.name);
    suite.p90_ms = finite_ms(s, "p90_ms", suite.name);
    suite.mean_ms = finite_ms(s, "mean_ms", suite.name);
    suite.min_ms = finite_ms(s, "min_ms", suite.name);
    suite.counters = counters_from_json(s.at("counters"));
    if (const util::json::Value* o = s.find("counter_overhead_pct")) {
      suite.counter_overhead_pct = o->as_double();
    }
    if (const util::json::Value* o = s.find("trace_overhead_pct")) {
      suite.trace_overhead_pct = o->as_double();
    }
    if (const util::json::Value* o = s.find("metrics_overhead_pct")) {
      suite.metrics_overhead_pct = o->as_double();
    }
    report.suites.push_back(std::move(suite));
  }
  return report;
}

SuiteDiff diff_suite_names(const BenchReport& baseline,
                           const BenchReport& current) {
  SuiteDiff diff;
  for (const BenchSuite& base : baseline.suites) {
    if (current.find_suite(base.name) == nullptr) {
      diff.removed.push_back(base.name);
    }
  }
  for (const BenchSuite& cur : current.suites) {
    if (baseline.find_suite(cur.name) == nullptr) {
      diff.added.push_back(cur.name);
    }
  }
  return diff;
}

std::vector<Regression> compare_reports(const BenchReport& baseline,
                                        const BenchReport& current,
                                        const CompareOptions& options) {
  std::vector<Regression> regressions;
  for (const BenchSuite& base : baseline.suites) {
    if (base.median_ms < options.min_baseline_ms) continue;
    const BenchSuite* cur = current.find_suite(base.name);
    if (cur == nullptr) {
      regressions.push_back({base.name, base.median_ms, -1.0, 0.0});
      continue;
    }
    const double ratio = cur->median_ms / base.median_ms;
    if (cur->median_ms > base.median_ms * (1.0 + options.tolerance)) {
      regressions.push_back({base.name, base.median_ms, cur->median_ms, ratio});
    }
  }
  return regressions;
}

}  // namespace partree::obs
