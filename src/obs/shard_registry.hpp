// Per-thread shard registry backing the observability counters/timers.
//
// Hot paths (one engine event, one min_load_node call) touch only the
// calling thread's shard -- no atomics, no locks -- so `sim::parallel_for`
// workers never contend. A shard registers itself on a thread's first use
// and, when the thread exits, folds its totals into a "retired" accumulator
// under the registry mutex: joining a worker pool therefore merges its
// counters automatically. Aggregation walks retired + live shards and is
// only meant for quiescent points (harness boundaries, after joins).
#pragma once

#include <mutex>
#include <vector>

namespace partree::obs::detail {

/// T needs: default construction == zero, `void merge(const T&)`, and
/// copy assignment (used to zero shards on reset).
template <typename T>
class ShardRegistry {
 public:
  /// The calling thread's shard. First call on a thread registers it;
  /// thread exit retires it.
  T& local() {
    static thread_local Handle handle(*this);
    return handle.value;
  }

  /// Sum of every value ever recorded and not reset: retired shards plus
  /// a snapshot of all live ones. Call at quiescent points only --
  /// concurrent writers on other threads make the snapshot fuzzy.
  [[nodiscard]] T aggregate() const {
    std::lock_guard lock(mutex_);
    T out = retired_;
    for (const T* shard : live_) out.merge(*shard);
    return out;
  }

  /// Zeroes the retired accumulator and every live shard. Call only when
  /// no other thread is recording.
  void reset() {
    std::lock_guard lock(mutex_);
    retired_ = T{};
    for (T* shard : live_) *shard = T{};
  }

 private:
  struct Handle {
    T value{};
    ShardRegistry& owner;

    explicit Handle(ShardRegistry& registry) : owner(registry) {
      std::lock_guard lock(owner.mutex_);
      owner.live_.push_back(&value);
    }
    ~Handle() {
      std::lock_guard lock(owner.mutex_);
      owner.retired_.merge(value);
      std::erase(owner.live_, &value);
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
  };

  mutable std::mutex mutex_;
  std::vector<T*> live_;
  T retired_{};
};

}  // namespace partree::obs::detail
