#include "obs/timing.hpp"

#include <atomic>
#include <chrono>

#include "obs/shard_registry.hpp"
#include "obs/trace.hpp"

namespace partree::obs {
namespace {

std::atomic<bool> g_timing_enabled{false};

// Leaked on purpose; see counters.cpp.
detail::ShardRegistry<PhaseTimes>& registry() {
  static auto* r = new detail::ShardRegistry<PhaseTimes>();
  return *r;
}

}  // namespace

std::string_view phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kPlace: return "place";
    case Phase::kReallocate: return "reallocate";
    case Phase::kDeparture: return "departure";
    case Phase::kBookkeeping: return "bookkeeping";
    case Phase::kParallelRegion: return "parallel_region";
    case Phase::kParallelWorker: return "parallel_worker";
    case Phase::kCount: break;
  }
  return "unknown";
}

void set_timing_enabled(bool enabled) noexcept {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

bool timing_enabled() noexcept {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

PhaseTimes global_phase_times() { return registry().aggregate(); }

void reset_phase_times() { registry().reset(); }

namespace detail {

std::uint64_t monotonic_ns() noexcept {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  // steady_clock never goes backwards; 0 is reserved for "timer disarmed".
  return ns <= 0 ? 1 : static_cast<std::uint64_t>(ns);
}

void record_span(Phase phase, std::uint64_t start_ns,
                 std::uint64_t end_ns) noexcept {
  PhaseTimes& shard = registry().local();
  shard.ns[static_cast<std::size_t>(phase)] += end_ns - start_ns;
  ++shard.spans[static_cast<std::size_t>(phase)];
  if (tracing_enabled()) emit_span(phase, start_ns, end_ns);
}

}  // namespace detail
}  // namespace partree::obs
