// Run metrics: distribution-level observability for the hot layers.
//
// Counters (counters.hpp) answer "how many"; this registry answers "how
// bad does it get". Instrumented code records into log2-bucketed
// histograms (durations and sizes), plus process-wide high-watermark
// gauges, all sharded per thread on the shard_registry.hpp pattern so the
// hot paths never synchronise. Unlike the counter shards, every cell here
// is a relaxed atomic written by exactly one thread, so a snapshot taken
// WHILE pool workers are recording is race-free (merely fuzzy) -- the
// crash-dump path reads the registry from an aborting thread without
// waiting for quiescence.
//
// Two switches, mirroring the counters/timing split:
//
//   * `set_metrics_enabled` (default ON) gates everything: value
//     histograms, gauges, and pre-measured duration records. The enabled
//     cost per record is a branch plus a handful of thread-local relaxed
//     stores -- counter-bump territory; the bench harness gates it below
//     1% on the E2 greedy sweep (metrics_overhead_pct).
//   * `set_duration_metrics_enabled` (default OFF) additionally lets
//     `MetricTimer` read the monotonic clock, populating the duration
//     histograms. Two clock reads per instrumented scope are measurable
//     on small events, so -- like phase timing -- it is opt-in
//     (`bench_harness --metrics`).
//
// Snapshots aggregate retired + live shards into plain structs, exported
// two ways: a canonical "partree-metrics-v1" JSON document and a
// Prometheus text exposition (`partree_*` families). The crash-dump path
// (obs/trace.hpp write_crash_dump) embeds the JSON document so
// invariant-failure forensics include the distributions leading up to the
// crash.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/timing.hpp"
#include "util/json.hpp"

namespace partree::obs {

/// Duration histograms (nanoseconds). Populated by MetricTimer scopes
/// while duration metrics are enabled, or directly via record_duration
/// when the caller already holds a measurement (e.g. a sweep shard's
/// wall time, measured anyway for the checkpoint).
enum class DurationMetric : std::size_t {
  /// Engine: one arrival fully handled (placement + any reallocation +
  /// slowdown bookkeeping).
  kArrivalHandleNs = 0,
  /// Engine: one departure fully handled.
  kDepartureHandleNs,
  /// Engine: one APPLIED reallocation round (decision + migration).
  kReallocRoundNs,
  /// Engine/serve: the allocator's planning half of one applied round
  /// (maybe_reallocate only, before any migration is applied). Recorded
  /// only when a plan was actually produced, so realloc_round_ns minus
  /// this is the application half.
  kReallocPlanNs,
  /// Pool: a caller's wait for the pool to go idle before its region
  /// dispatches (region-level queueing delay).
  kPoolDispatchWaitNs,
  /// Pool: one whole region, timed on the calling thread (includes the
  /// dispatch wait).
  kPoolRegionNs,
  /// Pool: one worker's participation in one region, timed on the worker.
  kPoolWorkerBusyNs,
  /// Pool: one worker's parked gap between consecutive regions it ran.
  kPoolWorkerIdleNs,
  /// Sweep: one run_shard call (all cells of the shard).
  kSweepShardNs,
  /// Serve: one request's wait in the partition-service queue, from
  /// admission to its epoch batch being dequeued.
  kServeQueueWaitNs,
  /// Serve: one request applied through the allocator by the service
  /// apply thread (placement or removal + any triggered reallocation).
  kServeApplyNs,
  kCount,
};

/// Size/count histograms (dimensionless). Always recorded while metrics
/// are enabled -- no clock involved.
enum class ValueMetric : std::size_t {
  /// Engine: physical task moves (from != to) per applied reallocation.
  kMigrationBatchSize = 0,
  /// Engine/serve: migrations the planner EMITTED per applied round.
  /// With the delta planner this counts tasks whose node changed plus any
  /// self-moves a custom planner chose to emit; the gap to
  /// migrations_applied is planner overhead, not physical work.
  kMigrationsPlanned,
  /// Engine/serve: physical moves (from != to) per applied round --
  /// migration_batch_size under a second, planner-facing name so the
  /// planned/applied pair reads side by side in dashboards.
  kMigrationsApplied,
  /// Pool: items per dispatched region.
  kPoolRegionItems,
  /// Pool: items per chunk a worker claimed off the ticket counter.
  kPoolChunkItems,
  /// Sweep: cells per executed shard.
  kSweepShardCells,
  /// Serve: requests per applied epoch batch.
  kServeBatchRequests,
  kCount,
};

/// High-watermark gauges: merged by max, reported as one value.
enum class GaugeMetric : std::size_t {
  /// Pool: most items queued at any region dispatch.
  kPoolQueueDepthHwm = 0,
  /// Pool: most workers participating in any region.
  kPoolWorkersHwm,
  /// Serve: most requests queued in the partition service.
  kServeQueueDepthHwm,
  kCount,
};

inline constexpr std::size_t kNumDurationMetrics =
    static_cast<std::size_t>(DurationMetric::kCount);
inline constexpr std::size_t kNumValueMetrics =
    static_cast<std::size_t>(ValueMetric::kCount);
inline constexpr std::size_t kNumGaugeMetrics =
    static_cast<std::size_t>(GaugeMetric::kCount);

/// Stable snake_case names used in the JSON document; the Prometheus
/// exposition prefixes them with "partree_".
[[nodiscard]] std::string_view duration_metric_name(DurationMetric m) noexcept;
[[nodiscard]] std::string_view value_metric_name(ValueMetric m) noexcept;
[[nodiscard]] std::string_view gauge_metric_name(GaugeMetric m) noexcept;

/// Log2 bucket layout: bucket 0 holds the value 0; bucket b in [1, 64]
/// holds values v with bit_width(v) == b, i.e. v in [2^(b-1), 2^b - 1].
inline constexpr std::size_t kLog2Buckets = 65;

/// Inclusive upper bound of bucket `b` (0, 1, 3, 7, ..., 2^64 - 1).
[[nodiscard]] constexpr std::uint64_t log2_bucket_upper(
    std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

/// Aggregated view of one histogram (plain data; no atomics).
struct MetricHistogram {
  std::array<std::uint64_t, kLog2Buckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< smallest recorded value; 0 when empty
  std::uint64_t max = 0;  ///< largest recorded value; 0 when empty

  /// Smallest bucket upper bound covering at least q * count
  /// observations, clamped to [min, max] so estimates never leave the
  /// observed range. q = 0 returns min (the smallest populated value,
  /// never an empty leading bucket); q = 1 returns max. 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// A full point-in-time aggregate of the registry.
struct MetricsSnapshot {
  std::array<MetricHistogram, kNumDurationMetrics> durations{};
  std::array<MetricHistogram, kNumValueMetrics> values{};
  std::array<std::uint64_t, kNumGaugeMetrics> gauges{};

  [[nodiscard]] const MetricHistogram& duration(DurationMetric m) const {
    return durations[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] const MetricHistogram& value(ValueMetric m) const {
    return values[static_cast<std::size_t>(m)];
  }
  [[nodiscard]] std::uint64_t gauge(GaugeMetric m) const {
    return gauges[static_cast<std::size_t>(m)];
  }
};

/// Master switch (default ON): gates every record_* call and gauge_max.
void set_metrics_enabled(bool enabled) noexcept;
[[nodiscard]] bool metrics_enabled() noexcept;

/// Duration-timer switch (default OFF): lets MetricTimer read the clock.
/// record_duration itself only needs the master switch -- callers that
/// already measured (sweep shards) record for free.
void set_duration_metrics_enabled(bool enabled) noexcept;
[[nodiscard]] bool duration_metrics_enabled() noexcept;

/// Records `ns` into a duration histogram (master switch gated).
void record_duration(DurationMetric m, std::uint64_t ns) noexcept;

/// Records `value` into a size/count histogram (master switch gated).
void record_value(ValueMetric m, std::uint64_t value) noexcept;

/// Raises a high-watermark gauge to at least `value` (master switch
/// gated). Watermarks merge by max across shards.
void gauge_max(GaugeMetric m, std::uint64_t value) noexcept;

/// Aggregate over all shards, retired + live. Safe to call while other
/// threads record (each cell is a single-writer relaxed atomic): the
/// result is a consistent-enough snapshot, exact at quiescent points.
[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Zeroes all shards. Quiescent points only (a concurrent writer's
/// in-flight record may survive the reset).
void reset_metrics();

/// Canonical "partree-metrics-v1" JSON document: every histogram keyed by
/// name with count/sum/min/max/mean and p50/p90/p99, buckets as
/// [bucket_index, count] pairs (nonzero only), plus the gauges.
[[nodiscard]] util::json::Value metrics_to_json(const MetricsSnapshot& snap);

/// Prometheus text exposition: one `partree_<name>` histogram family per
/// metric (cumulative `_bucket{le="..."}` at the log2 upper bounds up to
/// the highest populated bucket, then `+Inf`, `_sum`, `_count`) and one
/// gauge family per watermark.
[[nodiscard]] std::string metrics_to_prometheus(const MetricsSnapshot& snap);

/// Validates a parsed partree-metrics-v1 document: schema tag, every
/// metric present, bucket totals consistent with counts, min <= max.
/// Returns "" when valid, else a message naming the violation.
[[nodiscard]] std::string validate_metrics_json(const util::json::Value& v);

/// RAII duration scope: free (one relaxed load) unless duration metrics
/// are enabled, in which case it costs two clock reads plus one record.
class MetricTimer {
 public:
  explicit MetricTimer(DurationMetric m) noexcept
      : metric_(m),
        start_ns_(duration_metrics_enabled() ? detail::monotonic_ns() : 0) {}

  ~MetricTimer() {
    if (start_ns_ != 0) {
      record_duration(metric_, detail::monotonic_ns() - start_ns_);
    }
  }

  MetricTimer(const MetricTimer&) = delete;
  MetricTimer& operator=(const MetricTimer&) = delete;

 private:
  DurationMetric metric_;
  std::uint64_t start_ns_;
};

}  // namespace partree::obs
