// The machine-readable benchmark report ("partree-bench-v1").
//
// bench_harness produces a BenchReport, serialized as BENCH_<date>.json;
// bench_diff reads two of them and flags median-wall-time regressions
// beyond a tolerance. The schema lives here (not in the binaries) so tests
// can exercise round-tripping and the regression rule directly, and so a
// future CI step can consume the same structs.
//
// JSON layout:
//   { "schema": "partree-bench-v1",
//     "date": "YYYY-MM-DD", "git_sha": "...", "n_threads": K,
//     "smoke": false,
//     "suites": [ { "name": "...", "n": 1024, "reps": 5,
//                   "wall_ms": [..], "median_ms": m, "p90_ms": p,
//                   "mean_ms": a, "min_ms": lo,
//                   "counters": { "events_processed": ..., ... },
//                   "counter_overhead_pct": x,  // only the overhead suites
//                   "trace_overhead_pct": y,
//                   "metrics_overhead_pct": z
//                 }, ... ] }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "util/json.hpp"

namespace partree::obs {

struct BenchSuite {
  std::string name;
  std::uint64_t n = 0;       ///< problem size (PEs) the suite ran at
  std::uint64_t reps = 0;    ///< measured repetitions (excludes warmup)
  std::vector<double> wall_ms;  ///< per-rep wall time, measurement order
  double median_ms = 0.0;
  double p90_ms = 0.0;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  Counters counters;  ///< totals over one measured repetition
  /// Counters-enabled vs disabled overhead, percent; < 0 when the suite
  /// did not measure it.
  double counter_overhead_pct = -1.0;
  /// What the tracing subsystem costs while DISABLED, percent: default
  /// runs (always-on flight-recorder store) vs bare runs with the
  /// recorder switched off. < 0 when the suite did not measure it. The
  /// recorded wall times of the measuring suite are the default runs.
  double trace_overhead_pct = -1.0;
  /// What the metrics registry costs on its DEFAULT path (master switch
  /// on, duration timers off), percent, vs bare runs with the master
  /// switch off. < 0 when the suite did not measure it. The recorded wall
  /// times of the measuring suite are the default runs.
  double metrics_overhead_pct = -1.0;

  /// Fills median/p90/mean/min from wall_ms.
  void finalize_stats();
};

struct BenchReport {
  std::string schema = "partree-bench-v1";
  std::string date;     ///< ISO date of the run
  std::string git_sha;  ///< short sha, or "unknown"
  std::uint64_t n_threads = 0;
  bool smoke = false;  ///< reduced sizes/reps; not baseline-comparable
  std::vector<BenchSuite> suites;

  [[nodiscard]] const BenchSuite* find_suite(std::string_view name) const;
};

[[nodiscard]] util::json::Value to_json(const BenchReport& report);

/// Throws std::runtime_error on schema mismatch or malformed fields. Every
/// wall-time field (wall_ms entries, median/p90/mean/min) must be a finite
/// number; a NaN/string/absent time throws an error naming the suite and
/// field, so a damaged baseline fails the gate loudly instead of poisoning
/// every comparison it feeds.
[[nodiscard]] BenchReport report_from_json(const util::json::Value& v);

/// Suite-name difference for diagnostics: `removed` = present in baseline
/// but gone from current (these also surface as regressions), `added` =
/// present only in current (new suites; informational -- they have no
/// baseline to regress against). Both keep their report's suite order.
struct SuiteDiff {
  std::vector<std::string> removed;
  std::vector<std::string> added;
};
[[nodiscard]] SuiteDiff diff_suite_names(const BenchReport& baseline,
                                         const BenchReport& current);

/// One suite whose median wall time regressed (or disappeared).
struct Regression {
  std::string suite;
  double baseline_ms = 0.0;
  /// < 0 when the suite is missing from the current report.
  double current_ms = -1.0;
  /// current / baseline (0 when missing).
  double ratio = 0.0;
};

struct CompareOptions {
  /// Flag when current > baseline * (1 + tolerance).
  double tolerance = 0.15;
  /// Suites with baseline medians below this are pure noise; skipped.
  double min_baseline_ms = 0.01;
};

/// Regressions of `current` against `baseline` (suites matched by name;
/// suites only in `current` are improvements-by-definition and ignored).
[[nodiscard]] std::vector<Regression> compare_reports(
    const BenchReport& baseline, const BenchReport& current,
    const CompareOptions& options = {});

}  // namespace partree::obs
