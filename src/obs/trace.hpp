// Structured tracing: per-thread event rings, sinks, and a flight recorder.
//
// Instrumented code records fixed-size TraceEvents into a per-thread ring
// buffer -- no locks, no allocation past first use -- via three typed emit
// paths:
//
//   * phase spans      (obs/timing.hpp's ScopedTimer, while timing is on)
//   * engine instants  (arrival / departure / realloc round / migration
//                       batch; ALWAYS recorded -- they double as the flight
//                       recorder -- with a timestamp only while tracing)
//   * counter samples  (periodic max load / L* / active size / active tasks
//                       snapshots from the engine, while tracing)
//
// Tracing proper is armed by installing a TraceSink (set_trace_sink).
// While a sink is armed, rings flush into it whenever they fill and at
// explicit drain points (drain_trace; the engine drains after every traced
// run, and a thread's ring flushes itself on thread exit). With no sink the
// ring simply wraps, at a cost of one struct store per event, and its tail
// is the FLIGHT RECORDER: `thread_flight_record` returns the calling
// thread's last <= kFlightRecorderEvents events, and `write_crash_dump`
// serializes them together with the global counters and phase times as
// canonical JSON to stderr and a crash file -- the engine calls it when
// `EngineOptions::debug_checks` catches an invariant violation, so the
// events leading up to the corruption survive the abort.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/timing.hpp"

namespace partree::obs {

/// Engine instants: point events recorded once per engine action.
enum class Instant : std::uint8_t {
  /// One arrival fully handled (placement + any reallocation applied);
  /// payload = task id.
  kArrival = 0,
  /// One departure fully handled; payload = task id.
  kDeparture,
  /// An allocator elected to reallocate; payload = migration list size.
  kReallocRound,
  /// One MachineState::migrate call; payload = physical moves applied.
  kMigrationBatch,
  /// One injected fault applied by the detsim harness (sim/faults.hpp);
  /// payload = the step (event index) the fault fired at.
  kFaultInjected,
  /// One per-reallocation-epoch MachineState digest; payload = the digest.
  kStateDigest,
  /// One sweep shard completed (sim/sweep.hpp run_shard); payload = the
  /// shard index.
  kSweepShard,
  /// One partition-service epoch batch applied (serve/service.hpp);
  /// payload = requests in the batch.
  kServeBatch,
  kCount,
};

inline constexpr std::size_t kNumInstants =
    static_cast<std::size_t>(Instant::kCount);

/// Stable snake_case name used in trace exports and crash dumps.
[[nodiscard]] std::string_view instant_name(Instant i) noexcept;

enum class TraceEventKind : std::uint8_t {
  /// One completed phase span: a = start_ns, b = end_ns, id = Phase.
  kSpan = 0,
  /// One engine instant: a = payload, id = Instant.
  kInstant,
  /// One counter sample: a = max_load, b = l_star, c = active_size,
  /// d = active_tasks.
  kCounters,
};

/// Fixed-size structured event; the ring stores these by value.
struct TraceEvent {
  std::uint64_t seq = 0;    ///< per-thread sequence number (ring position)
  std::uint64_t ts_ns = 0;  ///< monotonic ns; 0 when recorded while tracing
                            ///< was off (flight-recorder-only events)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
  TraceEventKind kind = TraceEventKind::kInstant;
  std::uint8_t id = 0;  ///< Phase for spans, Instant for instants
};

/// Ring capacity per thread (power of two). A sinkless ring wraps; an
/// armed ring flushes before wrapping, so nothing is dropped in practice.
inline constexpr std::size_t kTraceRingCapacity = std::size_t{1} << 12;

/// Flight-recorder depth: how many trailing events a crash dump preserves.
inline constexpr std::size_t kFlightRecorderEvents = 128;

/// One thread's drained events, in sequence order.
struct ThreadTrace {
  std::uint64_t tid = 0;  ///< small id assigned at first event, process-wide
  std::vector<TraceEvent> events;
  /// Events overwritten before they could be drained (sink armed while the
  /// ring already held more than a capacity's worth of undrained events).
  std::uint64_t dropped = 0;
};

/// Consumer of drained trace chunks. `consume` is called under the trace
/// registry lock (flush points are serialized); implementations must not
/// call back into the trace API and should be cheap or buffer internally.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void consume(const ThreadTrace& chunk) = 0;
};

/// Counting sink for tests and overhead benches: tallies events by kind,
/// discards payloads.
class CountingTraceSink final : public TraceSink {
 public:
  void consume(const ThreadTrace& chunk) override;

  [[nodiscard]] std::uint64_t spans(Phase p) const noexcept {
    return spans_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::uint64_t instants(Instant i) const noexcept {
    return instants_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::uint64_t counter_samples() const noexcept {
    return counter_samples_;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::array<std::uint64_t, kNumPhases> spans_{};
  std::array<std::uint64_t, kNumInstants> instants_{};
  std::uint64_t counter_samples_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Arms (non-null) or disarms (null) tracing. Arming skips whatever the
/// rings currently hold, so the sink sees only events recorded from this
/// point on. Quiescent points only: at most one sink at a time, and no
/// other thread may be emitting during the switch.
void set_trace_sink(TraceSink* sink);

/// True while a sink is armed. One relaxed atomic load.
[[nodiscard]] bool tracing_enabled() noexcept;

/// Flushes every live ring into the armed sink. Quiescent points only.
/// No-op without a sink.
void drain_trace();

/// Benchmark kill switch for the always-on flight-recorder store: while
/// false, emit paths record nothing at all (armed sinks included).
/// Defaults to true; flip it only at quiescent points. Exists so
/// bench_harness can price the default store against a truly bare run --
/// leave it on everywhere else.
void set_flight_recorder_enabled(bool enabled) noexcept;
[[nodiscard]] bool flight_recorder_enabled() noexcept;

/// Records an engine instant. Always stores into the calling thread's ring
/// (the flight recorder); reads the clock only while tracing is enabled.
void emit_instant(Instant i, std::uint64_t payload = 0) noexcept;

/// Records a counter sample. No-op unless tracing is enabled.
void emit_counters(std::uint64_t max_load, std::uint64_t l_star,
                   std::uint64_t active_size,
                   std::uint64_t active_tasks) noexcept;

/// The calling thread's last <= kFlightRecorderEvents events, oldest
/// first (sequence order).
[[nodiscard]] std::vector<TraceEvent> thread_flight_record();

/// Overrides the crash-dump file path (tests). Empty restores the default
/// `partree_crash_<unix_ts>.json`, placed in $PARTREE_CRASH_DIR (created
/// if missing) when that is set, else in the working directory.
void set_crash_dump_path(std::string path);

/// Serializes the calling thread's flight record plus global counters and
/// phase times ("partree-crash-v1" JSON) to stderr and the crash-dump
/// file. The file write is atomic (tmp + rename), so a crash mid-dump
/// never leaves truncated JSON. Returns the file path, or "" if the file
/// could not be written (the stderr copy is emitted regardless). Called
/// on the way to abort(); does not itself abort.
std::string write_crash_dump(std::string_view reason);

namespace detail {
/// Span feed from timing.cpp's record_span; tracing-gated by the caller.
void emit_span(Phase phase, std::uint64_t start_ns,
               std::uint64_t end_ns) noexcept;
}  // namespace detail

}  // namespace partree::obs
