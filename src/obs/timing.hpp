// Phase timing.
//
// `ScopedTimer` brackets one engine phase with the monotonic clock and
// accumulates the elapsed nanoseconds into a per-thread shard (same
// sharding as counters.hpp, merged the same way). Timing is OFF by
// default: two steady_clock reads per event are measurable on small
// machines, so the harness switches it on only for phase-breakdown runs.
//
// While tracing is armed (obs/trace.hpp), every completed span is also
// recorded as a structured trace event -- that path is a branch on the
// tracing flag inside record_span, so the timing-disabled hot path stays
// one branch in the ScopedTimer constructor.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace partree::obs {

enum class Phase : std::size_t {
  /// Allocator placement decision + state application for one arrival.
  kPlace = 0,
  /// Reallocation decision + migration application.
  kReallocate,
  /// Departure handling (allocator notification + state removal).
  kDeparture,
  /// Per-event metric bookkeeping (series, peak histogram, checks).
  kBookkeeping,
  /// One whole sim::parallel_for region, timed on the calling thread.
  kParallelRegion,
  /// One worker's lifetime inside a parallel region, timed on the worker
  /// thread (gives per-thread tracks in timeline exports).
  kParallelWorker,
  kCount,
};

inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

/// Stable snake_case name used in BENCH json and reports.
[[nodiscard]] std::string_view phase_name(Phase p) noexcept;

/// Accumulated nanoseconds and span counts per phase.
struct PhaseTimes {
  std::array<std::uint64_t, kNumPhases> ns{};
  std::array<std::uint64_t, kNumPhases> spans{};

  [[nodiscard]] std::uint64_t nanos(Phase p) const noexcept {
    return ns[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::uint64_t count(Phase p) const noexcept {
    return spans[static_cast<std::size_t>(p)];
  }

  void merge(const PhaseTimes& other) noexcept {
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      ns[i] += other.ns[i];
      spans[i] += other.spans[i];
    }
  }

  friend bool operator==(const PhaseTimes&, const PhaseTimes&) = default;
};

/// Master switch; timing is disabled by default.
void set_timing_enabled(bool enabled) noexcept;
[[nodiscard]] bool timing_enabled() noexcept;

/// Sum over all threads since the last reset. Quiescent points only.
[[nodiscard]] PhaseTimes global_phase_times();

/// Zeroes all phase-time shards. Quiescent points only.
void reset_phase_times();

namespace detail {
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;
void record_span(Phase phase, std::uint64_t start_ns,
                 std::uint64_t end_ns) noexcept;
}  // namespace detail

/// RAII span: measures construction-to-destruction on the monotonic clock
/// and records it under `phase`. Free when timing is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Phase phase) noexcept
      : phase_(phase),
        start_ns_(timing_enabled() ? detail::monotonic_ns() : 0) {}

  ~ScopedTimer() {
    if (start_ns_ != 0) {
      detail::record_span(phase_, start_ns_, detail::monotonic_ns());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Phase phase_;
  std::uint64_t start_ns_;
};

}  // namespace partree::obs
