// Engine observability counters.
//
// A fixed set of process-wide event counters, sharded per thread (see
// shard_registry.hpp) so the hot paths never synchronise. Instrumented code
// calls `bump`; harnesses bracket a region with `reset_counters` /
// `global_counters`, and the engine attaches a per-run delta to each
// SimResult via `thread_counters` (a simulation run executes entirely on
// one thread, so the thread-local delta is exact).
//
// Counting is on by default and costs one predicted branch plus a
// thread-local add per bump; `set_counters_enabled(false)` reduces it to
// the branch, which is what the bench harness measures the overhead
// criterion against.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace partree::obs {

enum class Counter : std::size_t {
  /// Events consumed by sim::Engine (arrivals + departures).
  kEventsProcessed = 0,
  /// Arrival events consumed by sim::Engine.
  kArrivals,
  /// Departure events consumed by sim::Engine.
  kDepartures,
  /// Tasks placed into core::MachineState.
  kTasksPlaced,
  /// Tasks removed from core::MachineState.
  kTasksRemoved,
  /// Physical task moves applied by core::MachineState::migrate
  /// (migrations with from != to; self-moves are free and not counted).
  kMigrationsApplied,
  /// Reallocation rounds an allocator elected to perform.
  kReallocRounds,
  /// Calls to tree::LoadTree::min_load_node.
  kMinLoadNodeCalls,
  /// Nodes visited across all min_load_node queries (the pruning
  /// effectiveness metric: visits/call << N means the bound works).
  kMinLoadNodeVisits,
  /// Work items executed by sim::parallel_for (any thread count).
  kParallelTasks,
  kCount,
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case name used in BENCH json and reports.
[[nodiscard]] std::string_view counter_name(Counter c) noexcept;

/// A full snapshot of every counter; also the per-thread shard type.
struct Counters {
  std::array<std::uint64_t, kNumCounters> values{};

  [[nodiscard]] std::uint64_t operator[](Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t& operator[](Counter c) noexcept {
    return values[static_cast<std::size_t>(c)];
  }

  void merge(const Counters& other) noexcept {
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      values[i] += other.values[i];
    }
  }

  /// Component-wise `*this - earlier` (counters are monotonic, so this is
  /// the work done since `earlier` was snapped on the same thread).
  [[nodiscard]] Counters delta_since(const Counters& earlier) const noexcept {
    Counters out;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      out.values[i] = values[i] - earlier.values[i];
    }
    return out;
  }

  friend bool operator==(const Counters&, const Counters&) = default;
};

/// Master switch; counting is enabled by default.
void set_counters_enabled(bool enabled) noexcept;
[[nodiscard]] bool counters_enabled() noexcept;

/// Adds `n` to counter `c` on the calling thread's shard. No-op when
/// counting is disabled.
void bump(Counter c, std::uint64_t n = 1) noexcept;

/// Snapshot of the calling thread's shard (for per-run deltas).
[[nodiscard]] Counters thread_counters() noexcept;

/// Sum over all threads that ever counted since the last reset, including
/// exited pool workers. Quiescent points only.
[[nodiscard]] Counters global_counters();

/// Zeroes all shards (live and retired). Quiescent points only.
void reset_counters();

}  // namespace partree::obs
